//! A small SQL subset over the in-memory engine.
//!
//! Supported statements:
//!
//! ```sql
//! CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT, score REAL,
//!                 other_id INTEGER REFERENCES other(id));
//! INSERT INTO t VALUES (1, 'abc', 3.5, NULL);
//! INSERT INTO t (id, name) VALUES (2, 'def'), (3, 'ghi');
//! UPDATE t SET score = 0.5 WHERE score IS NULL;
//! DELETE FROM t WHERE score < 1;
//! SELECT name, score FROM t WHERE score >= 2 ORDER BY name DESC LIMIT 10;
//! SELECT m.title, p.name FROM movies m JOIN persons p ON m.director_id = p.id;
//! SELECT COUNT(*) FROM t;
//! ```
//!
//! The full grammar (case-insensitive keywords; `[]` optional, `{}`
//! repeatable):
//!
//! ```text
//! statement   := [EXPLAIN] (create | insert | select | update | delete) [";"]
//! create      := CREATE TABLE ident "(" coldef {"," coldef} ")"
//! coldef      := ident type [PRIMARY KEY] [REFERENCES ident "(" ident ")"]
//! type        := INTEGER|INT|BIGINT | REAL|FLOAT|DOUBLE|NUMERIC
//!              | TEXT|VARCHAR["(" n ")"]|CHAR["(" n ")"]|STRING
//! insert      := INSERT INTO ident ["(" ident {"," ident} ")"]
//!                VALUES tuple {"," tuple}
//! tuple       := "(" literal {"," literal} ")"
//! update      := UPDATE ident SET ident "=" literal {"," ident "=" literal}
//!                [where]
//! delete      := DELETE FROM ident [where]
//! select      := SELECT item {"," item} FROM tableref {join} [where]
//!                [ORDER BY colref [ASC|DESC]] [LIMIT n]
//! item        := "*" | colref | COUNT "(" "*" ")"
//! join        := [INNER] JOIN tableref ON colref "=" colref
//! where       := WHERE predicate {AND predicate}
//! predicate   := colref IS [NOT] NULL | colref op (literal | colref)
//! op          := "=" | "!=" | "<" | "<=" | ">" | ">="
//! tableref    := ident ["(" [literal {"," literal}] ")"] [ident]
//!                -- parenthesized literals make it a table-function
//!                -- call; the trailing ident is a binding alias
//! colref      := [ident "."] ident
//! literal     := NULL | int | float | 'string'
//! ```
//!
//! **Table functions.** A `FROM`/`JOIN` source written as a call —
//! `SELECT m.title, n.score FROM NEAREST('alien', 10) n JOIN movies m
//! ON m.id = n.id` — is materialized by an injected
//! [`TableFunctionProvider`] before planning and then joins, filters,
//! orders, and projects like any other relation. The provider is plugged
//! in through [`execute_provided`] (or the read-only [`query_provided`]);
//! `retro-core`'s serving layer injects a provider backed by an embedding
//! snapshot so `NEAREST` answers k-nearest-neighbour queries inside SQL.
//!
//! A multi-tuple `INSERT` executes through [`crate::BulkLoader`], so the
//! statement is **atomic** (a bad tuple anywhere inserts nothing) and later
//! tuples may reference keys introduced by earlier tuples of the same
//! statement — the semantics PostgreSQL gives a single `INSERT .. VALUES
//! (..), (..)` statement. See `docs/INGESTION.md` for the full ingestion
//! story.
//!
//! This is intentionally a *subset*: enough to drive the engine the way the
//! paper drives PostgreSQL (schema creation, bulk loads, relationship and
//! column scans), not a general query processor. Joins are equi-joins;
//! predicates are conjunctions of comparisons. [`run_script`] splits on
//! top-level semicolons, so a whole dump restores in one call.
//!
//! SELECT/UPDATE/DELETE execute through a cost-based planner (see
//! [`PlanMode`] and `docs/QUERY_PLANNING.md`): equality predicates on
//! indexed columns become primary-key or secondary-index lookups, joins
//! are greedily re-ordered from exact table statistics, and
//! single-table predicates push down to the table they constrain.
//! `EXPLAIN <statement>` renders the chosen plan as rows of text, and
//! [`execute_with`] exposes a forced-scan mode whose results every plan
//! must match bit-for-bit.

mod ast;
mod executor;
mod parser;
mod planner;
mod relation;
mod tokenizer;

pub use ast::{
    BinOp, ColumnRef, CreateTable, Delete, Expr, Insert, Literal, Select, SelectItem, Statement,
    TableRef, Update,
};
pub use executor::{execute, execute_provided, execute_with, query_provided, QueryResult};
pub use parser::parse_statement;
pub use planner::PlanMode;
pub use relation::{TableFunctionProvider, VirtualRelation};
pub use tokenizer::{tokenize, Token};

use crate::{Database, Result};

/// Parse and execute one SQL statement against `db`.
pub fn run(db: &mut Database, sql: &str) -> Result<QueryResult> {
    let stmt = parse_statement(sql)?;
    execute(db, &stmt)
}

/// Run several `;`-separated statements, returning the last result.
pub fn run_script(db: &mut Database, sql: &str) -> Result<QueryResult> {
    let mut last = QueryResult::empty();
    for stmt in split_statements(sql) {
        last = run(db, stmt)?;
    }
    Ok(last)
}

/// Split a script on top-level semicolons (quotes respected).
fn split_statements(sql: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let bytes = sql.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'\'' => in_str = !in_str,
            b';' if !in_str => {
                let piece = sql[start..i].trim();
                if !piece.is_empty() {
                    out.push(piece);
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    let piece = sql[start..].trim();
    if !piece.is_empty() {
        out.push(piece);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Value;

    #[test]
    fn end_to_end_script() {
        let mut db = Database::new();
        let result = run_script(
            &mut db,
            "CREATE TABLE persons (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT,
                                  director_id INTEGER REFERENCES persons(id));
             INSERT INTO persons VALUES (1, 'Luc Besson');
             INSERT INTO persons VALUES (2, 'Ridley Scott');
             INSERT INTO movies VALUES (10, '5th Element', 1);
             INSERT INTO movies VALUES (11, 'Alien', 2);
             INSERT INTO movies VALUES (12, 'Valerian', 1);
             SELECT m.title FROM movies m JOIN persons p ON m.director_id = p.id
             WHERE p.name = 'Luc Besson' ORDER BY m.title;",
        )
        .unwrap();
        let titles: Vec<_> = result.rows.iter().map(|r| r[0].to_string()).collect();
        assert_eq!(titles, vec!["5th Element", "Valerian"]);
    }

    #[test]
    fn count_star() {
        let mut db = Database::new();
        let r = run_script(
            &mut db,
            "CREATE TABLE t (id INTEGER PRIMARY KEY, x REAL);
             INSERT INTO t VALUES (1, 0.5); INSERT INTO t VALUES (2, NULL);
             SELECT COUNT(*) FROM t;",
        )
        .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
    }

    #[test]
    fn split_respects_string_literals() {
        let parts = split_statements("INSERT INTO t VALUES ('a;b'); SELECT 1");
        assert_eq!(parts.len(), 2);
        assert!(parts[0].contains("a;b"));
    }
}
