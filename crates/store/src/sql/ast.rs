//! Abstract syntax tree for the SQL subset.

use crate::value::{DataType, Value};

/// A parsed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE ...`.
    CreateTable(CreateTable),
    /// `INSERT INTO ... VALUES (...), (...)`.
    Insert(Insert),
    /// `SELECT ...`.
    Select(Select),
    /// `UPDATE ... SET ...`.
    Update(Update),
    /// `DELETE FROM ...`.
    Delete(Delete),
    /// `EXPLAIN <select | update | delete>` — render the chosen plan
    /// instead of executing the statement.
    Explain(Box<Statement>),
}

/// `UPDATE t SET col = lit [, ...] [WHERE conj]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Update {
    /// Target table.
    pub table: String,
    /// `(column, new value)` assignments.
    pub assignments: Vec<(String, Literal)>,
    /// Conjunction of predicates (empty = all rows).
    pub predicates: Vec<Expr>,
}

/// `DELETE FROM t [WHERE conj]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Delete {
    /// Target table.
    pub table: String,
    /// Conjunction of predicates (empty = all rows).
    pub predicates: Vec<Expr>,
}

/// `CREATE TABLE name (col TYPE [PRIMARY KEY] [REFERENCES t(c)], ...)`.
#[derive(Clone, Debug, PartialEq)]
pub struct CreateTable {
    /// New table name.
    pub name: String,
    /// `(column name, declared type)` pairs, in declaration order.
    pub columns: Vec<(String, DataType)>,
    /// Column declared `PRIMARY KEY`, if any.
    pub primary_key: Option<String>,
    /// `(column, ref_table, ref_column)`.
    pub foreign_keys: Vec<(String, String, String)>,
}

/// `INSERT INTO t [(cols)] VALUES (...), (...)`.
///
/// One statement may carry any number of `VALUES` tuples; execution routes
/// them through [`crate::BulkLoader`], so the whole statement is atomic —
/// a bad tuple anywhere inserts nothing.
#[derive(Clone, Debug, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Explicit column list; empty means "all columns in schema order".
    pub columns: Vec<String>,
    /// One literal tuple per `VALUES` group.
    pub rows: Vec<Vec<Literal>>,
}

/// A literal in an INSERT or WHERE clause.
#[derive(Clone, Debug, PartialEq)]
pub enum Literal {
    /// `NULL`.
    Null,
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A single-quoted string literal.
    Str(String),
}

impl Literal {
    /// Convert to a storage [`Value`].
    pub fn to_value(&self) -> Value {
        match self {
            Literal::Null => Value::Null,
            Literal::Int(i) => Value::Int(*i),
            Literal::Float(x) => Value::Float(*x),
            Literal::Str(s) => Value::Text(s.clone()),
        }
    }

    /// Render back to source form (strings single-quoted).
    pub fn display(&self) -> String {
        match self {
            Literal::Null => "NULL".to_owned(),
            Literal::Int(i) => i.to_string(),
            Literal::Float(x) => x.to_string(),
            Literal::Str(s) => format!("'{s}'"),
        }
    }
}

/// A possibly-qualified column reference `[table.]column`.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnRef {
    /// Optional qualifying table name or alias.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Render back to `t.c` / `c` form (for error messages).
    pub fn display(&self) -> String {
        match &self.table {
            Some(t) => format!("{t}.{}", self.column),
            None => self.column.clone(),
        }
    }
}

/// Comparison operators in WHERE / JOIN-ON clauses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // the variants are the operators themselves
pub enum BinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    /// Evaluate the comparison under SQL semantics: any comparison involving
    /// NULL is false (three-valued logic collapsed to false for filtering).
    pub fn eval(self, a: &Value, b: &Value) -> bool {
        if a.is_null() || b.is_null() {
            return false;
        }
        let ord = a.cmp_sql(b);
        match self {
            BinOp::Eq => ord.is_eq(),
            BinOp::Ne => ord.is_ne(),
            BinOp::Lt => ord.is_lt(),
            BinOp::Le => ord.is_le(),
            BinOp::Gt => ord.is_gt(),
            BinOp::Ge => ord.is_ge(),
        }
    }
}

/// A predicate atom.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// `col OP literal` or `col OP col`.
    Cmp {
        /// Left-hand column.
        left: ColumnRef,
        /// Comparison operator.
        op: BinOp,
        /// Right-hand literal or column.
        right: Operand,
    },
    /// `col IS NULL`.
    IsNull(ColumnRef),
    /// `col IS NOT NULL`.
    IsNotNull(ColumnRef),
}

/// Right-hand side of a comparison.
#[derive(Clone, Debug, PartialEq)]
pub enum Operand {
    /// A literal value.
    Lit(Literal),
    /// A column reference.
    Col(ColumnRef),
}

/// One item in a SELECT list.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `[t.]c`
    Column(ColumnRef),
    /// `COUNT(*)`
    CountStar,
}

/// A `FROM`/`JOIN` source: a stored table, or a table function with
/// literal arguments (`NEAREST('alien', 10) n`), with optional alias.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRef {
    /// Table name as it exists in the database, or the function name.
    pub table: String,
    /// Literal arguments when this is a table-function call; `None` for
    /// a plain stored-table reference. `Some(vec![])` is a zero-argument
    /// call (`f()`), distinct from a table named `f`.
    pub args: Option<Vec<Literal>>,
    /// Optional binding alias (`movies m`).
    pub alias: Option<String>,
}

impl TableRef {
    /// Name the table binds to in scope (alias wins).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }

    /// Whether this reference is a table-function call.
    pub fn is_function(&self) -> bool {
        self.args.is_some()
    }

    /// Render back to source-ish form (`movies`, `NEAREST('x', 10)`) for
    /// plans and error messages.
    pub fn display(&self) -> String {
        match &self.args {
            None => self.table.clone(),
            Some(args) => {
                let rendered: Vec<String> = args.iter().map(Literal::display).collect();
                format!("{}({})", self.table, rendered.join(", "))
            }
        }
    }
}

/// An `INNER JOIN ... ON a = b` clause.
#[derive(Clone, Debug, PartialEq)]
pub struct Join {
    /// The joined (right-hand) table.
    pub table: TableRef,
    /// Left side of the equi-join condition.
    pub left: ColumnRef,
    /// Right side of the equi-join condition.
    pub right: ColumnRef,
}

/// `SELECT items FROM t [JOIN ...]* [WHERE conj] [ORDER BY col [DESC]] [LIMIT n]`.
#[derive(Clone, Debug, PartialEq)]
pub struct Select {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// The `FROM` table.
    pub from: TableRef,
    /// `JOIN` clauses, applied left to right.
    pub joins: Vec<Join>,
    /// Conjunction of predicates.
    pub predicates: Vec<Expr>,
    /// `(column, descending)` of the `ORDER BY` clause, if present.
    pub order_by: Option<(ColumnRef, bool)>,
    /// `LIMIT` row count, if present.
    pub limit: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_null_semantics() {
        assert!(!BinOp::Eq.eval(&Value::Null, &Value::Null));
        assert!(!BinOp::Ne.eval(&Value::Int(1), &Value::Null));
        assert!(BinOp::Eq.eval(&Value::Int(1), &Value::Int(1)));
    }

    #[test]
    fn binop_comparisons() {
        assert!(BinOp::Lt.eval(&Value::Int(1), &Value::Float(1.5)));
        assert!(BinOp::Ge.eval(&Value::from("b"), &Value::from("a")));
        assert!(BinOp::Ne.eval(&Value::from("a"), &Value::from("b")));
    }

    #[test]
    fn literal_to_value() {
        assert_eq!(Literal::Str("x".into()).to_value(), Value::from("x"));
        assert_eq!(Literal::Null.to_value(), Value::Null);
    }

    #[test]
    fn table_ref_binding() {
        let t = TableRef { table: "movies".into(), args: None, alias: Some("m".into()) };
        assert_eq!(t.binding(), "m");
        assert!(!t.is_function());
        let t = TableRef { table: "movies".into(), args: None, alias: None };
        assert_eq!(t.binding(), "movies");
    }

    #[test]
    fn table_function_display() {
        let t = TableRef {
            table: "NEAREST".into(),
            args: Some(vec![Literal::Str("alien".into()), Literal::Int(10)]),
            alias: Some("n".into()),
        };
        assert!(t.is_function());
        assert_eq!(t.binding(), "n");
        assert_eq!(t.display(), "NEAREST('alien', 10)");
        let zero = TableRef { table: "f".into(), args: Some(vec![]), alias: None };
        assert_eq!(zero.display(), "f()");
    }
}
