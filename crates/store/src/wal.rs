//! Write-ahead log: length-prefixed, checksummed mutation records.
//!
//! Every committed mutation on a durable [`crate::Database`] appends one
//! record here *before* the in-memory state changes (log-before-apply).
//! [`crate::Database::recover`] replays the tail of this log on top of the
//! latest snapshot to reproduce the exact pre-crash state.
//!
//! # On-disk frame
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! payload = seq: u64 LE | kind: u8 | body
//! ```
//!
//! `crc` is a CRC-32 (IEEE) over the payload. The reader stops cleanly at
//! the first frame whose header is short, whose payload is shorter than
//! `len` (a torn write), or whose checksum does not match — that is the
//! torn-tail contract: everything before the damage replays, everything
//! after is discarded. A payload that *passes* the checksum but fails to
//! decode, or a sequence number that skips ahead, is real corruption and
//! surfaces as [`StoreError::Corruption`] instead.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::error::StoreError;
use crate::schema::{ColumnDef, ForeignKey, TableSchema};
use crate::value::{DataType, Value};
use crate::Result;

/// File name of the write-ahead log inside a durability directory.
pub const WAL_FILE: &str = "wal.log";

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) of `data`.
///
/// This is the checksum used by every persisted artifact in the workspace
/// (WAL frames, database snapshots, serving snapshots, binary embedding
/// caches), exposed so the other crates do not each grow their own copy.
pub fn crc32(data: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            }
            *slot = crc;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ table[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

pub(crate) fn io_err(err: std::io::Error) -> StoreError {
    StoreError::Io(err.to_string())
}

// ---------------------------------------------------------------------------
// Little-endian codec shared by the WAL and the snapshot writer.
// ---------------------------------------------------------------------------

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_value(buf: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            buf.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            buf.push(2);
            buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            buf.push(3);
            put_str(buf, s);
        }
    }
}

pub(crate) fn put_row(buf: &mut Vec<u8>, row: &[Value]) {
    put_u32(buf, row.len() as u32);
    for value in row {
        put_value(buf, value);
    }
}

pub(crate) fn put_rows(buf: &mut Vec<u8>, rows: &[Vec<Value>]) {
    put_u64(buf, rows.len() as u64);
    for row in rows {
        put_row(buf, row);
    }
}

fn data_type_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Int => 0,
        DataType::Float => 1,
        DataType::Text => 2,
    }
}

pub(crate) fn put_schema(buf: &mut Vec<u8>, schema: &TableSchema) {
    put_str(buf, &schema.name);
    put_u32(buf, schema.columns.len() as u32);
    for col in &schema.columns {
        put_str(buf, &col.name);
        buf.push(data_type_tag(col.ty));
    }
    match schema.primary_key {
        Some(pk) => {
            buf.push(1);
            put_u64(buf, pk as u64);
        }
        None => buf.push(0),
    }
    put_u32(buf, schema.foreign_keys.len() as u32);
    for fk in &schema.foreign_keys {
        put_str(buf, &fk.column);
        put_str(buf, &fk.ref_table);
        put_str(buf, &fk.ref_column);
    }
}

/// Bounds-checked little-endian reader over a decoded payload. Every
/// failure is a [`StoreError::Corruption`] — by the time a `Cursor` runs,
/// the bytes already passed their checksum, so a decode error means the
/// writer and reader disagree, not that the tail was torn.
pub(crate) struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.data.len() - self.pos < n {
            return Err(StoreError::Corruption(format!(
                "unexpected end of record while reading {what}"
            )));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub(crate) fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn u32(&mut self, what: &str) -> Result<u32> {
        let raw = self.take(4, what)?;
        Ok(u32::from_le_bytes(raw.try_into().expect("4-byte slice")))
    }

    pub(crate) fn u64(&mut self, what: &str) -> Result<u64> {
        let raw = self.take(8, what)?;
        Ok(u64::from_le_bytes(raw.try_into().expect("8-byte slice")))
    }

    pub(crate) fn string(&mut self, what: &str) -> Result<String> {
        let len = self.u32(what)? as usize;
        let raw = self.take(len, what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| StoreError::Corruption(format!("invalid UTF-8 while reading {what}")))
    }

    pub(crate) fn value(&mut self) -> Result<Value> {
        match self.u8("value tag")? {
            0 => Ok(Value::Null),
            1 => {
                let raw = self.take(8, "integer value")?;
                Ok(Value::Int(i64::from_le_bytes(raw.try_into().expect("8-byte slice"))))
            }
            2 => {
                let raw = self.take(8, "float value")?;
                Ok(Value::Float(f64::from_bits(u64::from_le_bytes(
                    raw.try_into().expect("8-byte slice"),
                ))))
            }
            3 => Ok(Value::Text(self.string("text value")?)),
            tag => Err(StoreError::Corruption(format!("unknown value tag {tag}"))),
        }
    }

    pub(crate) fn row(&mut self) -> Result<Vec<Value>> {
        let n = self.u32("row arity")? as usize;
        let mut row = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            row.push(self.value()?);
        }
        Ok(row)
    }

    pub(crate) fn rows(&mut self) -> Result<Vec<Vec<Value>>> {
        let n = self.u64("row count")? as usize;
        let mut rows = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            rows.push(self.row()?);
        }
        Ok(rows)
    }

    pub(crate) fn schema(&mut self) -> Result<TableSchema> {
        let name = self.string("table name")?;
        let n_cols = self.u32("column count")? as usize;
        let mut columns = Vec::with_capacity(n_cols.min(1024));
        for _ in 0..n_cols {
            let col_name = self.string("column name")?;
            let ty = match self.u8("column type")? {
                0 => DataType::Int,
                1 => DataType::Float,
                2 => DataType::Text,
                tag => {
                    return Err(StoreError::Corruption(format!("unknown column type tag {tag}")))
                }
            };
            columns.push(ColumnDef { name: col_name, ty });
        }
        let primary_key = match self.u8("primary key flag")? {
            0 => None,
            1 => Some(self.u64("primary key index")? as usize),
            tag => return Err(StoreError::Corruption(format!("unknown pk flag {tag}"))),
        };
        let n_fks = self.u32("foreign key count")? as usize;
        let mut foreign_keys = Vec::with_capacity(n_fks.min(1024));
        for _ in 0..n_fks {
            foreign_keys.push(ForeignKey {
                column: self.string("fk column")?,
                ref_table: self.string("fk referenced table")?,
                ref_column: self.string("fk referenced column")?,
            });
        }
        Ok(TableSchema { name, columns, primary_key, foreign_keys })
    }
}

// ---------------------------------------------------------------------------
// Log records.
// ---------------------------------------------------------------------------

/// One mutation, borrowed from the live engine at append time. Each
/// variant mirrors exactly one committed mutation path on
/// [`crate::Database`].
pub(crate) enum WalOp<'a> {
    /// `Database::create_table` — the validated schema.
    CreateTable(&'a TableSchema),
    /// `Database::insert` — one validated row.
    Insert { table: &'a str, row: &'a [Value] },
    /// A committed `BulkLoader` batch: the appended row suffix of every
    /// grown table, in slot (parents-first) order.
    Batch { tables: &'a [(&'a str, &'a [Vec<Value>])] },
    /// `Database::update_rows` — the validated `(row, col, value)` set.
    Update { table: &'a str, updates: &'a [(usize, usize, Value)] },
    /// `Database::delete_rows` — the effective (sorted, deduplicated,
    /// in-range) position set.
    Delete { table: &'a str, positions: &'a [usize] },
    /// A `table_mut` edit session ended: the table's full row state at
    /// guard drop (the engine cannot see what the borrower did, so it
    /// logs the result wholesale — mirroring `TableChange::Unknown`).
    TableState { table: &'a str, rows: &'a [Vec<Value>] },
    /// `Database::create_index` — a declared secondary index. Only
    /// user-declared indexes are logged; foreign-key auto-indexes are
    /// re-derived from the replayed `CreateTable` schema.
    CreateIndex { table: &'a str, column: &'a str },
}

impl WalOp<'_> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WalOp::CreateTable(schema) => {
                buf.push(1);
                put_schema(buf, schema);
            }
            WalOp::Insert { table, row } => {
                buf.push(2);
                put_str(buf, table);
                put_row(buf, row);
            }
            WalOp::Batch { tables } => {
                buf.push(3);
                put_u32(buf, tables.len() as u32);
                for (name, rows) in *tables {
                    put_str(buf, name);
                    put_rows(buf, rows);
                }
            }
            WalOp::Update { table, updates } => {
                buf.push(4);
                put_str(buf, table);
                put_u32(buf, updates.len() as u32);
                for (row, col, value) in *updates {
                    put_u64(buf, *row as u64);
                    put_u64(buf, *col as u64);
                    put_value(buf, value);
                }
            }
            WalOp::Delete { table, positions } => {
                buf.push(5);
                put_str(buf, table);
                put_u32(buf, positions.len() as u32);
                for pos in *positions {
                    put_u64(buf, *pos as u64);
                }
            }
            WalOp::TableState { table, rows } => {
                buf.push(6);
                put_str(buf, table);
                put_rows(buf, rows);
            }
            WalOp::CreateIndex { table, column } => {
                buf.push(7);
                put_str(buf, table);
                put_str(buf, column);
            }
        }
    }
}

/// The owned mirror of [`WalOp`], decoded from the log during replay.
#[derive(Debug)]
pub(crate) enum WalEntry {
    CreateTable(TableSchema),
    Insert { table: String, row: Vec<Value> },
    Batch { tables: Vec<(String, Vec<Vec<Value>>)> },
    Update { table: String, updates: Vec<(usize, usize, Value)> },
    Delete { table: String, positions: Vec<usize> },
    TableState { table: String, rows: Vec<Vec<Value>> },
    CreateIndex { table: String, column: String },
}

impl WalEntry {
    fn decode(cur: &mut Cursor<'_>) -> Result<Self> {
        let entry = match cur.u8("record kind")? {
            1 => WalEntry::CreateTable(cur.schema()?),
            2 => WalEntry::Insert { table: cur.string("table name")?, row: cur.row()? },
            3 => {
                let n = cur.u32("batch table count")? as usize;
                let mut tables = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let name = cur.string("batch table name")?;
                    tables.push((name, cur.rows()?));
                }
                WalEntry::Batch { tables }
            }
            4 => {
                let table = cur.string("table name")?;
                let n = cur.u32("update count")? as usize;
                let mut updates = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let row = cur.u64("update row")? as usize;
                    let col = cur.u64("update column")? as usize;
                    updates.push((row, col, cur.value()?));
                }
                WalEntry::Update { table, updates }
            }
            5 => {
                let table = cur.string("table name")?;
                let n = cur.u32("delete count")? as usize;
                let mut positions = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    positions.push(cur.u64("delete position")? as usize);
                }
                WalEntry::Delete { table, positions }
            }
            6 => WalEntry::TableState { table: cur.string("table name")?, rows: cur.rows()? },
            7 => WalEntry::CreateIndex {
                table: cur.string("table name")?,
                column: cur.string("index column")?,
            },
            kind => return Err(StoreError::Corruption(format!("unknown wal record kind {kind}"))),
        };
        if !cur.is_empty() {
            return Err(StoreError::Corruption("trailing bytes inside wal record".into()));
        }
        Ok(entry)
    }
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

/// When appended WAL records reach the operating system.
///
/// The durability contract of `docs/DURABILITY.md` — log-before-apply,
/// torn-tail recovery, checkpoint compaction — is identical under every
/// policy; the policy only chooses the flush cadence, i.e. how many of
/// the *most recent* commits a crash may lose. Records are framed and
/// sequence-numbered identically either way, so a log written under one
/// policy recovers under the other.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DurabilityPolicy {
    /// Write and flush every record before the commit returns (the
    /// default). A crash loses nothing that was committed.
    PerCommit,
    /// Group commit: buffer up to `n` framed records in memory and write
    /// + flush them together when the group fills, when `max_delay` has
    /// elapsed since the group's first record, or on an explicit
    /// [`crate::Database::flush_wal`] / checkpoint / drop. A crash may
    /// lose the buffered tail (at most `n` commits, at most `max_delay`
    /// old); everything flushed recovers exactly as under
    /// [`DurabilityPolicy::PerCommit`].
    ///
    /// The delay bound is enforced at append/flush time — there is no
    /// background timer thread — so a quiet writer's last group stays
    /// buffered until the next append, an explicit flush, or drop.
    Group(usize, Duration),
}

impl Default for DurabilityPolicy {
    fn default() -> Self {
        DurabilityPolicy::PerCommit
    }
}

/// Append-only handle on the log file. Owned by
/// `database::Durability`; one record per committed mutation, reaching
/// the OS on the cadence chosen by [`DurabilityPolicy`].
#[derive(Debug)]
pub(crate) struct Wal {
    file: File,
    /// Sequence number the next appended record will carry. Monotonic for
    /// the lifetime of the durability directory — compaction truncates the
    /// file but never rewinds the sequence.
    pub(crate) next_seq: u64,
    /// Flush cadence; see [`DurabilityPolicy`].
    policy: DurabilityPolicy,
    /// Framed records not yet written to the file (group commit only).
    buffer: Vec<u8>,
    /// How many records `buffer` holds.
    buffered: usize,
    /// When the oldest buffered record was appended.
    buffered_since: Option<Instant>,
}

impl Wal {
    /// Open (creating if absent) the log for appending. `next_seq` is the
    /// sequence number the next record must carry — one past the last
    /// sequence recovery replayed (or past the snapshot it skipped to).
    pub(crate) fn open(path: &Path, next_seq: u64) -> Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path).map_err(io_err)?;
        Ok(Self {
            file,
            next_seq,
            policy: DurabilityPolicy::PerCommit,
            buffer: Vec::new(),
            buffered: 0,
            buffered_since: None,
        })
    }

    /// Change the flush cadence. Any buffered group is flushed first, so
    /// records appended under the old policy keep its guarantee.
    pub(crate) fn set_policy(&mut self, policy: DurabilityPolicy) -> Result<()> {
        self.flush()?;
        self.policy = policy;
        Ok(())
    }

    /// Append one framed record. Under [`DurabilityPolicy::PerCommit`] the
    /// record reaches the OS before this returns; under group commit it is
    /// buffered and the group is flushed when full or older than the
    /// configured delay.
    pub(crate) fn append(&mut self, op: &WalOp<'_>) -> Result<()> {
        let mut payload = Vec::with_capacity(64);
        put_u64(&mut payload, self.next_seq);
        op.encode(&mut payload);
        let frame_len = payload.len() + 8;
        match self.policy {
            DurabilityPolicy::PerCommit => {
                let mut frame = Vec::with_capacity(frame_len);
                put_u32(&mut frame, payload.len() as u32);
                put_u32(&mut frame, crc32(&payload));
                frame.extend_from_slice(&payload);
                self.file.write_all(&frame).map_err(io_err)?;
                self.file.flush().map_err(io_err)?;
            }
            DurabilityPolicy::Group(n, max_delay) => {
                self.buffer.reserve(frame_len);
                put_u32(&mut self.buffer, payload.len() as u32);
                put_u32(&mut self.buffer, crc32(&payload));
                self.buffer.extend_from_slice(&payload);
                self.buffered += 1;
                let since = *self.buffered_since.get_or_insert_with(Instant::now);
                if self.buffered >= n.max(1) || since.elapsed() >= max_delay {
                    self.flush()?;
                }
            }
        }
        self.next_seq += 1;
        Ok(())
    }

    /// Write any buffered group to the file and flush to the OS. A no-op
    /// when nothing is buffered (in particular under
    /// [`DurabilityPolicy::PerCommit`], where appends flush themselves).
    pub(crate) fn flush(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        self.file.write_all(&self.buffer).map_err(io_err)?;
        self.file.flush().map_err(io_err)?;
        self.buffer.clear();
        self.buffered = 0;
        self.buffered_since = None;
        Ok(())
    }

    /// Discard every record (compaction): called right after a snapshot
    /// captured everything up to the current sequence. Any buffered group
    /// is discarded too — the snapshot already captured those mutations'
    /// effects. The sequence counter keeps counting — recovery pairs the
    /// truncated log with the snapshot's recorded sequence.
    pub(crate) fn reset(&mut self) -> Result<()> {
        self.buffer.clear();
        self.buffered = 0;
        self.buffered_since = None;
        self.file.set_len(0).map_err(io_err)
    }
}

impl Drop for Wal {
    /// Best-effort flush of a buffered group: a clean shutdown under group
    /// commit loses nothing. (A flush failure cannot be reported from a
    /// destructor; a *crash* skips this entirely — that is the bounded
    /// loss window group commit trades for fewer flushes.)
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

/// Result of scanning a log file: the decodable tail entries strictly
/// after `after_seq`, plus the sequence the next live append must use.
pub(crate) struct WalReplay {
    pub(crate) entries: Vec<WalEntry>,
    pub(crate) next_seq: u64,
}

/// Scan the log at `path`, returning every entry with sequence greater
/// than `after_seq` (records at or below it are already covered by the
/// snapshot — a crash between snapshot rename and log truncation leaves
/// such records behind, and they must be skipped, not replayed twice).
///
/// Tail damage (short header, torn payload, checksum mismatch, zeroed
/// frame) ends the scan cleanly at the last intact record. Damage that
/// passes the checksum but fails to decode, or a gap in the sequence
/// numbers, is a typed [`StoreError::Corruption`].
pub(crate) fn read_wal(path: &Path, after_seq: u64) -> Result<WalReplay> {
    let data = match std::fs::read(path) {
        Ok(data) => data,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalReplay { entries: Vec::new(), next_seq: after_seq + 1 });
        }
        Err(err) => return Err(io_err(err)),
    };
    let mut entries = Vec::new();
    let mut expected = after_seq + 1;
    let mut pos = 0usize;
    while data.len() - pos >= 8 {
        let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4-byte slice")) as usize;
        let stored_crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len == 0 {
            // Never written by the appender; a zero-filled tail (e.g. from
            // preallocation) reads as end-of-log.
            break;
        }
        if data.len() - pos - 8 < len {
            break; // torn record: the frame was cut mid-payload
        }
        let payload = &data[pos + 8..pos + 8 + len];
        if crc32(payload) != stored_crc {
            break; // bit flip or torn tail inside the payload
        }
        let mut cur = Cursor::new(payload);
        let seq = cur.u64("record sequence")?;
        let entry = WalEntry::decode(&mut cur)?;
        pos += 8 + len;
        if seq <= after_seq {
            continue; // covered by the snapshot
        }
        if seq != expected {
            return Err(StoreError::Corruption(format!(
                "wal sequence gap: expected {expected}, found {seq}"
            )));
        }
        entries.push(entry);
        expected += 1;
    }
    Ok(WalReplay { entries, next_seq: expected })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn value_codec_round_trips() {
        let row = vec![
            Value::Null,
            Value::Int(-42),
            Value::Float(1.5),
            Value::Float(f64::NAN),
            Value::Text("héllo, wörld".into()),
        ];
        let mut buf = Vec::new();
        put_row(&mut buf, &row);
        let mut cur = Cursor::new(&buf);
        let back = cur.row().unwrap();
        assert!(cur.is_empty());
        assert_eq!(back.len(), row.len());
        // NaN != NaN, so compare bit patterns where needed.
        for (a, b) in row.iter().zip(&back) {
            match (a, b) {
                (Value::Float(x), Value::Float(y)) => assert_eq!(x.to_bits(), y.to_bits()),
                _ => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn schema_codec_round_trips() {
        let schema = TableSchema::builder("movies")
            .pk("id")
            .column("title", DataType::Text)
            .column("score", DataType::Float)
            .fk("studio_id", "studios", "id")
            .build();
        let mut buf = Vec::new();
        put_schema(&mut buf, &schema);
        let mut cur = Cursor::new(&buf);
        let back = cur.schema().unwrap();
        assert!(cur.is_empty());
        assert_eq!(back.name, schema.name);
        assert_eq!(back.columns, schema.columns);
        assert_eq!(back.primary_key, schema.primary_key);
        assert_eq!(back.foreign_keys, schema.foreign_keys);
    }
}
