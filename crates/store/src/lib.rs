//! # retro-store
//!
//! An in-memory relational database engine: the substrate RETRO runs on.
//!
//! The paper integrates RETRO "on top of PostgreSQL" and only uses the DBMS
//! for three things: storing tables with typed columns and key constraints,
//! answering schema-introspection queries (which columns are text? which
//! foreign keys exist? which tables are pure n:m link tables?), and bulk
//! reads of column data. This crate implements that contract natively:
//!
//! * [`Database`] / [`Table`] — tables with typed columns ([`DataType`]),
//!   primary keys, foreign-key constraints (validated on insert),
//!   row/column access, and a monotonic write-version counter
//!   ([`Database::write_version`]) so observers can detect staleness with
//!   one integer compare,
//! * [`changelog`] — per-table versions ([`Database::table_version`]) and
//!   the bounded change log ([`Database::changes_since`]) that tell an
//!   observer *what* changed, not just that something did — the substrate
//!   of `retro-core`'s delta-scoped refresh; see `docs/INCREMENTAL.md`,
//! * [`bulk`] — the batched [`BulkLoader`] ingest fast path (stage →
//!   validate once per batch → atomic commit); see `docs/INGESTION.md`,
//! * [`schema`] — schema definitions plus the introspection used by
//!   `retro-core`'s relationship extraction (§3.2 of the paper),
//! * [`csv`] — CSV import/export (the paper's datasets ship as CSV),
//!   including a streaming reader-based import that runs in bounded
//!   memory,
//! * [`wal`] / [`persist`] — the durability subsystem: a write-ahead log
//!   of committed mutations plus checksummed binary snapshots, recovered
//!   by [`Database::recover`]; see `docs/DURABILITY.md`,
//! * [`index`] — per-table secondary equality indexes (FK columns are
//!   auto-indexed; [`Database::create_index`] declares more), maintained
//!   through every mutation path and rebuilt bit-identically by recovery,
//! * [`sql`] — a small SQL subset (`CREATE TABLE`, `INSERT`, `SELECT` with
//!   `WHERE`/`JOIN`/`ORDER BY`/`LIMIT`, `EXPLAIN`) executed through a
//!   cost-based planner — predicate pushdown, index-vs-scan access choice,
//!   greedy join ordering from exact table statistics; see
//!   `docs/QUERY_PLANNING.md`,
//! * [`shared`] — [`SharedDatabase`], the cloneable many-readers /
//!   exclusive-writer handle the serving layer builds on.
//!
//! The engine is row-oriented with hash indexes where access patterns
//! demand them: RETRO's extraction mixes full-column scans (text
//! harvesting) with point probes (FK targets, value interning), and the
//! index layer serves the latter without changing any result.

#![warn(missing_docs)]

/// The end-to-end ingestion story, rendered from `docs/INGESTION.md` so
/// the guide's code examples compile and run as doctests.
#[doc = include_str!("../../../docs/INGESTION.md")]
pub mod ingestion {}

/// The durability story — WAL format, snapshot/compaction lifecycle, the
/// recovery contract — rendered from `docs/DURABILITY.md` so the guide's
/// code examples compile and run as doctests.
#[doc = include_str!("../../../docs/DURABILITY.md")]
pub mod durability {}

/// The query-planning story — secondary indexes, statistics, cost-based
/// join ordering, `EXPLAIN`, the forced-scan oracle — rendered from
/// `docs/QUERY_PLANNING.md` so the guide's code examples compile and run
/// as doctests.
#[doc = include_str!("../../../docs/QUERY_PLANNING.md")]
pub mod query_planning {}

pub mod bulk;
pub mod changelog;
pub mod csv;
pub mod database;
pub mod error;
pub mod index;
pub mod persist;
pub mod schema;
pub mod shared;
pub mod sql;
pub mod table;
pub mod value;
pub mod wal;

pub use bulk::{BulkLoader, TableHandle};
pub use changelog::{ChangeRecord, TableChange};
pub use database::{Database, TableGuard};
pub use error::StoreError;
pub use persist::SNAPSHOT_FILE;
pub use schema::{ColumnDef, ForeignKey, TableSchema};
pub use shared::SharedDatabase;
pub use table::Table;
pub use value::{DataType, Value};
pub use wal::{crc32, DurabilityPolicy, WAL_FILE};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StoreError>;
