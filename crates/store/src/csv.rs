//! CSV import/export (RFC-4180 style quoting).
//!
//! The paper's datasets ship as Kaggle CSV files that are "imported in a
//! PostgreSQL database system"; this module provides the equivalent path
//! into [`crate::Database`]. The parser supports quoted fields containing
//! commas, escaped quotes (`""`), and embedded newlines.

use crate::error::StoreError;
use crate::table::Table;
use crate::value::{DataType, Value};
use crate::Result;

/// Parse a CSV document into records of string fields.
pub fn parse(input: &str) -> Result<Vec<Vec<String>>> {
    Ok(parse_records(input)?.into_iter().map(|(_, rec)| rec).collect())
}

/// Like [`parse`], but each record carries the 1-based *physical* line it
/// starts on. Quoted fields may contain newlines, so record number and
/// line number diverge in general; error reporting wants the line.
fn parse_records(input: &str) -> Result<Vec<(usize, Vec<String>)>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    let mut line = 1usize;
    let mut record_line = 1usize;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => {
                    if other == '\n' {
                        line += 1; // embedded newline inside a quoted field
                    }
                    field.push(other);
                }
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(StoreError::Csv("quote inside unquoted field".to_owned()));
                    }
                    in_quotes = true;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    // Swallow \n of \r\n; a lone \r also terminates a record.
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    records.push((record_line, std::mem::take(&mut record)));
                    record_line = line;
                }
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    records.push((record_line, std::mem::take(&mut record)));
                    record_line = line;
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(StoreError::Csv("unterminated quoted field".to_owned()));
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push((record_line, record));
    }
    Ok(records)
}

/// Quote a field for CSV output when needed.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Serialize records to CSV text (LF line endings).
pub fn to_string(records: &[Vec<String>]) -> String {
    let mut out = String::new();
    for rec in records {
        let mut first = true;
        for field in rec {
            if !first {
                out.push(',');
            }
            out.push_str(&quote(field));
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Convert a string field to a [`Value`] according to the column type.
/// Empty fields become NULL (the common CSV convention for missing data).
pub fn field_to_value(field: &str, ty: DataType) -> Result<Value> {
    if field.is_empty() {
        return Ok(Value::Null);
    }
    match ty {
        DataType::Int => field
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| StoreError::Csv(format!("bad integer `{field}`: {e}"))),
        DataType::Float => field
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| StoreError::Csv(format!("bad float `{field}`: {e}"))),
        DataType::Text => Ok(Value::Text(field.to_owned())),
    }
}

/// Import a headered CSV document into an existing table of a database.
///
/// The header row must name a subset of the table's columns (in any order);
/// unnamed columns receive NULL. Rows are staged through the batched
/// [`crate::BulkLoader`] fast path, which enforces **every** constraint —
/// arity, column types, primary-key presence/uniqueness, and foreign keys —
/// with the per-row name resolution amortized to once per import. The
/// import is **atomic**: a failed record rolls the whole batch back inside
/// the loader, so on any error the target table is untouched and the error
/// is returned as [`StoreError::CsvRow`], carrying the 1-based CSV line
/// number and the underlying violation (the same violation a row-by-row
/// insert loop would have hit first). Returns the number of inserted rows
/// on success.
///
/// ```
/// use retro_store::{csv, Database, DataType, StoreError, TableSchema};
///
/// let mut db = Database::new();
/// db.create_table(
///     TableSchema::builder("apps").pk("id").column("name", DataType::Text).build(),
/// ).unwrap();
/// // Line 3 repeats primary key 1: nothing at all is inserted.
/// let err = csv::import_csv(&mut db, "apps", "id,name\n1,Maps\n1,Docs\n").unwrap_err();
/// assert!(matches!(err, StoreError::CsvRow { line: 3, .. }));
/// assert!(db.table("apps").unwrap().is_empty());
/// ```
pub fn import_csv(db: &mut crate::Database, table: &str, csv_text: &str) -> Result<usize> {
    let records = parse_records(csv_text)?;
    let n_records = records.len().saturating_sub(1);
    let mut it = records.into_iter();
    let (_, header) = it.next().ok_or_else(|| StoreError::Csv("empty CSV document".to_owned()))?;

    let mut loader = db.bulk();
    let handle = loader.table(table)?;
    loader.reserve(handle, n_records);
    let schema = loader.schema(handle).clone();
    // Map CSV position → table column index.
    let mut mapping = Vec::with_capacity(header.len());
    for name in &header {
        let idx = schema.column_index(name).ok_or_else(|| StoreError::UnknownColumn {
            table: table.to_owned(),
            column: name.clone(),
        })?;
        mapping.push(idx);
    }

    // Stage every record. A conversion or constraint error anywhere makes
    // the loader roll the whole batch back (and its early return drops the
    // loader, reinstalling the untouched tables), so the import stays
    // atomic without any snapshot. Rows may reference earlier rows of the
    // same document — staged rows are live in the loader's indexes, exactly
    // like the old row-by-row path.
    let mut inserted = 0;
    for (line, rec) in it {
        let result = (|| {
            if rec.len() != mapping.len() {
                return Err(StoreError::ArityMismatch {
                    table: table.to_owned(),
                    expected: mapping.len(),
                    got: rec.len(),
                });
            }
            let mut row = vec![Value::Null; schema.columns.len()];
            for (field, &col) in rec.iter().zip(&mapping) {
                row[col] = field_to_value(field, schema.columns[col].ty)?;
            }
            loader.stage(handle, row).map_err(|err| match err {
                StoreError::BulkRow { source, .. } => *source,
                other => other,
            })
        })();
        if let Err(source) = result {
            return Err(StoreError::CsvRow { line, source: Box::new(source) });
        }
        inserted += 1;
    }
    loader.commit()?;
    Ok(inserted)
}

/// Export a table (all rows, all columns, with header) to CSV text.
pub fn export_csv(table: &Table) -> String {
    let mut records = Vec::with_capacity(table.len() + 1);
    records.push(table.schema().columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>());
    for row in table.rows() {
        records.push(
            row.iter()
                .map(|v| match v {
                    Value::Null => String::new(),
                    other => other.to_string(),
                })
                .collect(),
        );
    }
    to_string(&records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::Database;

    #[test]
    fn parse_simple() {
        let recs = parse("a,b\n1,2\n").unwrap();
        assert_eq!(recs, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn parse_quoted_commas_and_escapes() {
        let recs = parse("\"x,y\",\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(recs, vec![vec!["x,y".to_owned(), "he said \"hi\"".to_owned()]]);
    }

    #[test]
    fn parse_embedded_newline() {
        let recs = parse("\"line1\nline2\",b\n").unwrap();
        assert_eq!(recs[0][0], "line1\nline2");
    }

    #[test]
    fn parse_crlf_and_missing_trailing_newline() {
        let recs = parse("a,b\r\nc,d").unwrap();
        assert_eq!(recs, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn parse_rejects_unterminated_quote() {
        assert!(parse("\"oops").is_err());
    }

    #[test]
    fn round_trip_through_serializer() {
        let recs = vec![vec!["plain".to_owned(), "with,comma".to_owned(), "q\"q".to_owned()]];
        let text = to_string(&recs);
        assert_eq!(parse(&text).unwrap(), recs);
    }

    #[test]
    fn field_conversion() {
        assert_eq!(field_to_value("", DataType::Int).unwrap(), Value::Null);
        assert_eq!(field_to_value("42", DataType::Int).unwrap(), Value::Int(42));
        assert_eq!(field_to_value("1.5", DataType::Float).unwrap(), Value::Float(1.5));
        assert!(field_to_value("x", DataType::Int).is_err());
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("apps")
                .pk("id")
                .column("name", DataType::Text)
                .column("rating", DataType::Float)
                .build(),
        )
        .unwrap();
        db
    }

    #[test]
    fn import_with_reordered_header() {
        let mut db = sample_db();
        let n =
            import_csv(&mut db, "apps", "rating,id,name\n4.5,1,Maps\n,2,\"Chat, Pro\"\n").unwrap();
        assert_eq!(n, 2);
        let t = db.table("apps").unwrap();
        assert_eq!(t.row_by_pk(2).unwrap()[1], Value::from("Chat, Pro"));
        assert_eq!(t.row_by_pk(2).unwrap()[2], Value::Null);
    }

    #[test]
    fn import_rejects_unknown_column() {
        let mut db = sample_db();
        assert!(import_csv(&mut db, "apps", "bogus\n1\n").is_err());
    }

    #[test]
    fn import_rejects_ragged_record() {
        let mut db = sample_db();
        assert!(import_csv(&mut db, "apps", "id,name\n1\n").is_err());
    }

    fn fk_db() -> Database {
        let mut db = sample_db();
        db.create_table(
            TableSchema::builder("reviews")
                .pk("id")
                .column("text", DataType::Text)
                .fk("app_id", "apps", "id")
                .build(),
        )
        .unwrap();
        db
    }

    #[test]
    fn failed_import_rolls_back_and_reports_line() {
        let mut db = sample_db();
        import_csv(&mut db, "apps", "id,name\n1,Keep\n").unwrap();
        // Line 3 has a malformed float: the whole import must be undone.
        let err = import_csv(&mut db, "apps", "id,name,rating\n2,Ok,4.0\n3,Bad,notanumber\n")
            .unwrap_err();
        match err {
            StoreError::CsvRow { line, source } => {
                assert_eq!(line, 3);
                assert!(matches!(*source, StoreError::Csv(_)));
            }
            other => panic!("expected CsvRow, got {other:?}"),
        }
        let t = db.table("apps").unwrap();
        assert_eq!(t.len(), 1, "partial import must be rolled back");
        assert!(t.contains_pk(1));
        assert!(!t.contains_pk(2));
    }

    #[test]
    fn fk_violation_is_typed_with_line_number() {
        let mut db = fk_db();
        import_csv(&mut db, "apps", "id,name\n1,Maps\n").unwrap();
        let err = import_csv(&mut db, "reviews", "id,text,app_id\n1,fine,1\n2,dangling,99\n")
            .unwrap_err();
        match err {
            StoreError::CsvRow { line, source } => {
                assert_eq!(line, 3);
                assert!(matches!(*source, StoreError::ForeignKeyViolation { .. }));
            }
            other => panic!("expected CsvRow, got {other:?}"),
        }
        assert!(db.table("reviews").unwrap().is_empty());
    }

    #[test]
    fn duplicate_pk_is_typed_and_atomic() {
        let mut db = sample_db();
        let err = import_csv(&mut db, "apps", "id,name\n1,Maps\n1,Docs\n").unwrap_err();
        match err {
            StoreError::CsvRow { line, source } => {
                assert_eq!(line, 3);
                assert!(matches!(*source, StoreError::DuplicateKey { .. }));
            }
            other => panic!("expected CsvRow, got {other:?}"),
        }
        assert!(db.table("apps").unwrap().is_empty());
    }

    #[test]
    fn ragged_record_is_an_arity_error_with_line() {
        let mut db = sample_db();
        let err = import_csv(&mut db, "apps", "id,name\n1,Maps\n2\n").unwrap_err();
        match err {
            StoreError::CsvRow { line, source } => {
                assert_eq!(line, 3);
                assert!(matches!(*source, StoreError::ArityMismatch { expected: 2, got: 1, .. }));
            }
            other => panic!("expected CsvRow, got {other:?}"),
        }
        assert!(db.table("apps").unwrap().is_empty());
    }

    #[test]
    fn error_line_accounts_for_embedded_newlines() {
        // Record 2 spans physical lines 2–3 (quoted newline), so the
        // offending duplicate-PK record starts on physical line 4.
        let mut db = sample_db();
        let err = import_csv(&mut db, "apps", "id,name\n1,\"two\nlines\"\n1,Dup\n").unwrap_err();
        match err {
            StoreError::CsvRow { line, source } => {
                assert_eq!(line, 4);
                assert!(matches!(*source, StoreError::DuplicateKey { .. }));
            }
            other => panic!("expected CsvRow, got {other:?}"),
        }
        assert!(db.table("apps").unwrap().is_empty());
    }

    #[test]
    fn rows_may_reference_earlier_rows_of_the_same_document() {
        // FK checks run per insert, so references to rows that appeared
        // earlier in the same CSV document are valid — which is why the
        // import cannot be pre-validated in a constraint-free dry run.
        let mut db = fk_db();
        import_csv(&mut db, "apps", "id,name\n1,Maps\n").unwrap();
        let n = import_csv(&mut db, "reviews", "id,text,app_id\n1,ok,1\n2,also ok,1\n").unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn export_import_round_trip() {
        let mut db = sample_db();
        import_csv(&mut db, "apps", "id,name,rating\n1,Maps,4.5\n2,Docs,\n").unwrap();
        let text = export_csv(db.table("apps").unwrap());

        let mut db2 = sample_db();
        import_csv(&mut db2, "apps", &text).unwrap();
        assert_eq!(db2.table("apps").unwrap().rows(), db.table("apps").unwrap().rows());
    }
}
