//! CSV import/export (RFC-4180 style quoting).
//!
//! The paper's datasets ship as Kaggle CSV files that are "imported in a
//! PostgreSQL database system"; this module provides the equivalent path
//! into [`crate::Database`]. The parser supports quoted fields containing
//! commas, escaped quotes (`""`), and embedded newlines.

use crate::error::StoreError;
use crate::table::Table;
use crate::value::{DataType, Value};
use crate::Result;

/// Parse a CSV document into records of string fields.
pub fn parse(input: &str) -> Result<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(StoreError::Csv("quote inside unquoted field".to_owned()));
                    }
                    in_quotes = true;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {
                    // Swallow \r of \r\n; a lone \r also terminates a record.
                    if chars.peek() == Some(&'\n') {
                        chars.next();
                    }
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(StoreError::Csv("unterminated quoted field".to_owned()));
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Quote a field for CSV output when needed.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Serialize records to CSV text (LF line endings).
pub fn to_string(records: &[Vec<String>]) -> String {
    let mut out = String::new();
    for rec in records {
        let mut first = true;
        for field in rec {
            if !first {
                out.push(',');
            }
            out.push_str(&quote(field));
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Convert a string field to a [`Value`] according to the column type.
/// Empty fields become NULL (the common CSV convention for missing data).
pub fn field_to_value(field: &str, ty: DataType) -> Result<Value> {
    if field.is_empty() {
        return Ok(Value::Null);
    }
    match ty {
        DataType::Int => field
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| StoreError::Csv(format!("bad integer `{field}`: {e}"))),
        DataType::Float => field
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| StoreError::Csv(format!("bad float `{field}`: {e}"))),
        DataType::Text => Ok(Value::Text(field.to_owned())),
    }
}

/// Import a headered CSV document into an existing table of a database.
///
/// The header row must name a subset of the table's columns (in any order);
/// unnamed columns receive NULL. Rows are inserted through the database so
/// all constraints are enforced. Returns the number of inserted rows.
pub fn import_csv(db: &mut crate::Database, table: &str, csv_text: &str) -> Result<usize> {
    let records = parse(csv_text)?;
    let mut it = records.into_iter();
    let header = it.next().ok_or_else(|| StoreError::Csv("empty CSV document".to_owned()))?;

    let schema = db.table(table)?.schema().clone();
    // Map CSV position → table column index.
    let mut mapping = Vec::with_capacity(header.len());
    for name in &header {
        let idx = schema.column_index(name).ok_or_else(|| StoreError::UnknownColumn {
            table: table.to_owned(),
            column: name.clone(),
        })?;
        mapping.push(idx);
    }

    let mut inserted = 0;
    for (line_no, rec) in it.enumerate() {
        if rec.len() != mapping.len() {
            return Err(StoreError::Csv(format!(
                "record {} has {} fields, header has {}",
                line_no + 2,
                rec.len(),
                mapping.len()
            )));
        }
        let mut row = vec![Value::Null; schema.columns.len()];
        for (field, &col) in rec.iter().zip(&mapping) {
            row[col] = field_to_value(field, schema.columns[col].ty)?;
        }
        db.insert(table, row)?;
        inserted += 1;
    }
    Ok(inserted)
}

/// Export a table (all rows, all columns, with header) to CSV text.
pub fn export_csv(table: &Table) -> String {
    let mut records = Vec::with_capacity(table.len() + 1);
    records.push(table.schema().columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>());
    for row in table.rows() {
        records.push(
            row.iter()
                .map(|v| match v {
                    Value::Null => String::new(),
                    other => other.to_string(),
                })
                .collect(),
        );
    }
    to_string(&records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::Database;

    #[test]
    fn parse_simple() {
        let recs = parse("a,b\n1,2\n").unwrap();
        assert_eq!(recs, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn parse_quoted_commas_and_escapes() {
        let recs = parse("\"x,y\",\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(recs, vec![vec!["x,y".to_owned(), "he said \"hi\"".to_owned()]]);
    }

    #[test]
    fn parse_embedded_newline() {
        let recs = parse("\"line1\nline2\",b\n").unwrap();
        assert_eq!(recs[0][0], "line1\nline2");
    }

    #[test]
    fn parse_crlf_and_missing_trailing_newline() {
        let recs = parse("a,b\r\nc,d").unwrap();
        assert_eq!(recs, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn parse_rejects_unterminated_quote() {
        assert!(parse("\"oops").is_err());
    }

    #[test]
    fn round_trip_through_serializer() {
        let recs = vec![vec!["plain".to_owned(), "with,comma".to_owned(), "q\"q".to_owned()]];
        let text = to_string(&recs);
        assert_eq!(parse(&text).unwrap(), recs);
    }

    #[test]
    fn field_conversion() {
        assert_eq!(field_to_value("", DataType::Int).unwrap(), Value::Null);
        assert_eq!(field_to_value("42", DataType::Int).unwrap(), Value::Int(42));
        assert_eq!(field_to_value("1.5", DataType::Float).unwrap(), Value::Float(1.5));
        assert!(field_to_value("x", DataType::Int).is_err());
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("apps")
                .pk("id")
                .column("name", DataType::Text)
                .column("rating", DataType::Float)
                .build(),
        )
        .unwrap();
        db
    }

    #[test]
    fn import_with_reordered_header() {
        let mut db = sample_db();
        let n =
            import_csv(&mut db, "apps", "rating,id,name\n4.5,1,Maps\n,2,\"Chat, Pro\"\n").unwrap();
        assert_eq!(n, 2);
        let t = db.table("apps").unwrap();
        assert_eq!(t.row_by_pk(2).unwrap()[1], Value::from("Chat, Pro"));
        assert_eq!(t.row_by_pk(2).unwrap()[2], Value::Null);
    }

    #[test]
    fn import_rejects_unknown_column() {
        let mut db = sample_db();
        assert!(import_csv(&mut db, "apps", "bogus\n1\n").is_err());
    }

    #[test]
    fn import_rejects_ragged_record() {
        let mut db = sample_db();
        assert!(import_csv(&mut db, "apps", "id,name\n1\n").is_err());
    }

    #[test]
    fn export_import_round_trip() {
        let mut db = sample_db();
        import_csv(&mut db, "apps", "id,name,rating\n1,Maps,4.5\n2,Docs,\n").unwrap();
        let text = export_csv(db.table("apps").unwrap());

        let mut db2 = sample_db();
        import_csv(&mut db2, "apps", &text).unwrap();
        assert_eq!(db2.table("apps").unwrap().rows(), db.table("apps").unwrap().rows());
    }
}
