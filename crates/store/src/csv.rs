//! CSV import/export (RFC-4180 style quoting).
//!
//! The paper's datasets ship as Kaggle CSV files that are "imported in a
//! PostgreSQL database system"; this module provides the equivalent path
//! into [`crate::Database`]. The parser supports quoted fields containing
//! commas, escaped quotes (`""`), and embedded newlines.
//!
//! The parser is an incremental *push* automaton (`RecordParser`,
//! private): it accepts characters one at a time and emits completed
//! records, so the same machine serves both [`parse`] over an in-memory
//! string and the streaming [`import_csv_reader`], which ingests a
//! chunked [`std::io::Read`] source in bounded memory — Paper-scale CSV
//! never needs to be resident as one allocation.

use crate::bulk::{BulkLoader, TableHandle};
use crate::error::StoreError;
use crate::schema::TableSchema;
use crate::table::Table;
use crate::value::{DataType, Value};
use crate::Result;

/// Parse a CSV document into records of string fields.
pub fn parse(input: &str) -> Result<Vec<Vec<String>>> {
    Ok(parse_records(input)?.into_iter().map(|(_, rec)| rec).collect())
}

/// Like [`parse`], but each record carries the 1-based *physical* line it
/// starts on. Quoted fields may contain newlines, so record number and
/// line number diverge in general; error reporting wants the line.
fn parse_records(input: &str) -> Result<Vec<(usize, Vec<String>)>> {
    let mut records = Vec::new();
    let mut parser = RecordParser::new();
    for c in input.chars() {
        parser.push(c, &mut records)?;
    }
    parser.finish(&mut records)?;
    Ok(records)
}

/// Incremental RFC-4180 parser: feed characters with
/// [`RecordParser::push`] (completed records land in `out`), then call
/// [`RecordParser::finish`] once the input is exhausted. Lookahead the
/// batch parser did with `peek()` — is this `""` an escaped quote? does a
/// `\n` follow this `\r`? — is carried as pending state instead, so the
/// input may be cut anywhere, including inside a `\r\n` pair or an
/// escaped quote.
struct RecordParser {
    record: Vec<String>,
    field: String,
    in_quotes: bool,
    /// A quote was seen inside a quoted field; the next character decides
    /// whether it was an escaped `""` or the end of quoting.
    quote_pending: bool,
    /// A `\r` just ended a record; a directly following `\n` belongs to
    /// the same line break and must be swallowed.
    cr_pending: bool,
    /// Any character was consumed (an empty document yields no records,
    /// but a trailing unterminated record still ends one).
    any: bool,
    /// 1-based physical line of the character about to be consumed.
    line: usize,
    /// Physical line the record currently being assembled started on.
    record_line: usize,
}

impl RecordParser {
    fn new() -> Self {
        Self {
            record: Vec::new(),
            field: String::new(),
            in_quotes: false,
            quote_pending: false,
            cr_pending: false,
            any: false,
            line: 1,
            record_line: 1,
        }
    }

    fn end_record(&mut self, out: &mut Vec<(usize, Vec<String>)>) {
        self.record.push(std::mem::take(&mut self.field));
        out.push((self.record_line, std::mem::take(&mut self.record)));
        self.record_line = self.line;
    }

    fn push(&mut self, c: char, out: &mut Vec<(usize, Vec<String>)>) -> Result<()> {
        self.any = true;
        if self.cr_pending {
            self.cr_pending = false;
            if c == '\n' {
                return Ok(());
            }
        }
        if self.quote_pending {
            self.quote_pending = false;
            if c == '"' {
                self.field.push('"');
                return Ok(());
            }
            // The pending quote closed the field; `c` continues unquoted.
            self.in_quotes = false;
        }
        if self.in_quotes {
            match c {
                '"' => self.quote_pending = true,
                other => {
                    if other == '\n' {
                        self.line += 1; // embedded newline inside a quoted field
                    }
                    self.field.push(other);
                }
            }
            return Ok(());
        }
        match c {
            '"' => {
                if !self.field.is_empty() {
                    return Err(StoreError::Csv("quote inside unquoted field".to_owned()));
                }
                self.in_quotes = true;
            }
            ',' => self.record.push(std::mem::take(&mut self.field)),
            '\r' => {
                self.line += 1;
                self.end_record(out);
                self.cr_pending = true;
            }
            '\n' => {
                self.line += 1;
                self.end_record(out);
            }
            other => self.field.push(other),
        }
        Ok(())
    }

    fn finish(mut self, out: &mut Vec<(usize, Vec<String>)>) -> Result<()> {
        if self.quote_pending {
            // A quote directly before EOF closes its field.
            self.in_quotes = false;
        }
        if self.in_quotes {
            return Err(StoreError::Csv("unterminated quoted field".to_owned()));
        }
        if self.any && (!self.field.is_empty() || !self.record.is_empty()) {
            self.end_record(out);
        }
        Ok(())
    }
}

/// Quote a field for CSV output when needed.
fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') || field.contains('\r') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Serialize records to CSV text (LF line endings).
pub fn to_string(records: &[Vec<String>]) -> String {
    let mut out = String::new();
    for rec in records {
        let mut first = true;
        for field in rec {
            if !first {
                out.push(',');
            }
            out.push_str(&quote(field));
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Convert a string field to a [`Value`] according to the column type.
/// Empty fields become NULL (the common CSV convention for missing data).
pub fn field_to_value(field: &str, ty: DataType) -> Result<Value> {
    if field.is_empty() {
        return Ok(Value::Null);
    }
    match ty {
        DataType::Int => field
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| StoreError::Csv(format!("bad integer `{field}`: {e}"))),
        DataType::Float => field
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| StoreError::Csv(format!("bad float `{field}`: {e}"))),
        DataType::Text => Ok(Value::Text(field.to_owned())),
    }
}

/// Import a headered CSV document into an existing table of a database.
///
/// The header row must name a subset of the table's columns (in any order);
/// unnamed columns receive NULL. Rows are staged through the batched
/// [`crate::BulkLoader`] fast path, which enforces **every** constraint —
/// arity, column types, primary-key presence/uniqueness, and foreign keys —
/// with the per-row name resolution amortized to once per import. The
/// import is **atomic**: a failed record rolls the whole batch back inside
/// the loader, so on any error the target table is untouched and the error
/// is returned as [`StoreError::CsvRow`], carrying the 1-based CSV line
/// number and the underlying violation (the same violation a row-by-row
/// insert loop would have hit first). Returns the number of inserted rows
/// on success.
///
/// ```
/// use retro_store::{csv, Database, DataType, StoreError, TableSchema};
///
/// let mut db = Database::new();
/// db.create_table(
///     TableSchema::builder("apps").pk("id").column("name", DataType::Text).build(),
/// ).unwrap();
/// // Line 3 repeats primary key 1: nothing at all is inserted.
/// let err = csv::import_csv(&mut db, "apps", "id,name\n1,Maps\n1,Docs\n").unwrap_err();
/// assert!(matches!(err, StoreError::CsvRow { line: 3, .. }));
/// assert!(db.table("apps").unwrap().is_empty());
/// ```
pub fn import_csv(db: &mut crate::Database, table: &str, csv_text: &str) -> Result<usize> {
    let records = parse_records(csv_text)?;
    let n_records = records.len().saturating_sub(1);
    let mut it = records.into_iter();
    let (_, header) = it.next().ok_or_else(|| StoreError::Csv("empty CSV document".to_owned()))?;

    let mut loader = db.bulk();
    let handle = loader.table(table)?;
    loader.reserve(handle, n_records);
    let schema = loader.schema(handle).clone();
    // Map CSV position → table column index.
    let mut mapping = Vec::with_capacity(header.len());
    for name in &header {
        let idx = schema.column_index(name).ok_or_else(|| StoreError::UnknownColumn {
            table: table.to_owned(),
            column: name.clone(),
        })?;
        mapping.push(idx);
    }

    // Stage every record. A conversion or constraint error anywhere makes
    // the loader roll the whole batch back (and its early return drops the
    // loader, reinstalling the untouched tables), so the import stays
    // atomic without any snapshot. Rows may reference earlier rows of the
    // same document — staged rows are live in the loader's indexes, exactly
    // like the old row-by-row path.
    let mut inserted = 0;
    for (line, rec) in it {
        let result = (|| {
            if rec.len() != mapping.len() {
                return Err(StoreError::ArityMismatch {
                    table: table.to_owned(),
                    expected: mapping.len(),
                    got: rec.len(),
                });
            }
            let mut row = vec![Value::Null; schema.columns.len()];
            for (field, &col) in rec.iter().zip(&mapping) {
                row[col] = field_to_value(field, schema.columns[col].ty)?;
            }
            loader.stage(handle, row).map_err(|err| match err {
                StoreError::BulkRow { source, .. } => *source,
                other => other,
            })
        })();
        if let Err(source) = result {
            return Err(StoreError::CsvRow { line, source: Box::new(source) });
        }
        inserted += 1;
    }
    loader.commit()?;
    Ok(inserted)
}

/// Stage drained records into the loader. The first record is the header
/// (it builds `mapping`); every later record converts and stages exactly
/// like [`import_csv`], with errors wrapped in [`StoreError::CsvRow`]
/// around the record's physical line.
fn consume_records(
    records: &mut Vec<(usize, Vec<String>)>,
    loader: &mut BulkLoader<'_>,
    handle: TableHandle,
    schema: &TableSchema,
    table: &str,
    mapping: &mut Option<Vec<usize>>,
    inserted: &mut usize,
) -> Result<()> {
    for (line, rec) in records.drain(..) {
        match mapping {
            None => {
                let mut built = Vec::with_capacity(rec.len());
                for name in &rec {
                    let idx = schema.column_index(name).ok_or_else(|| {
                        StoreError::UnknownColumn { table: table.to_owned(), column: name.clone() }
                    })?;
                    built.push(idx);
                }
                *mapping = Some(built);
            }
            Some(mapping) => {
                let result = (|| {
                    if rec.len() != mapping.len() {
                        return Err(StoreError::ArityMismatch {
                            table: table.to_owned(),
                            expected: mapping.len(),
                            got: rec.len(),
                        });
                    }
                    let mut row = vec![Value::Null; schema.columns.len()];
                    for (field, &col) in rec.iter().zip(mapping.iter()) {
                        row[col] = field_to_value(field, schema.columns[col].ty)?;
                    }
                    loader.stage(handle, row).map_err(|err| match err {
                        StoreError::BulkRow { source, .. } => *source,
                        other => other,
                    })
                })();
                if let Err(source) = result {
                    return Err(StoreError::CsvRow { line, source: Box::new(source) });
                }
                *inserted += 1;
            }
        }
    }
    Ok(())
}

/// Import a headered CSV document from a chunked byte stream, in bounded
/// memory.
///
/// Identical contract to [`import_csv`] — same header mapping, same
/// constraint enforcement through the batched [`crate::BulkLoader`], same
/// atomicity (any error leaves the table untouched), same
/// [`StoreError::CsvRow`] physical-line error payloads — but the document
/// is consumed incrementally from `reader` in 64 KiB chunks: only the
/// carry of an incomplete UTF-8 sequence and the record currently being
/// assembled are buffered, so a Paper-scale CSV streams through without
/// ever being resident as one allocation. Chunk boundaries may fall
/// anywhere, including inside a multi-byte character, a `\r\n` pair, or
/// an escaped quote.
///
/// On a durable database the committed batch lands in the WAL as one
/// record, like any other bulk commit.
///
/// ```
/// use retro_store::{csv, Database, DataType, TableSchema, Value};
///
/// let mut db = Database::new();
/// db.create_table(
///     TableSchema::builder("apps").pk("id").column("name", DataType::Text).build(),
/// ).unwrap();
/// let doc: &[u8] = b"id,name\n1,Maps\n2,\"Chat, Pro\"\n";
/// let n = csv::import_csv_reader(&mut db, "apps", doc).unwrap();
/// assert_eq!(n, 2);
/// assert_eq!(db.table("apps").unwrap().row_by_pk(2).unwrap()[1], Value::from("Chat, Pro"));
/// ```
pub fn import_csv_reader(
    db: &mut crate::Database,
    table: &str,
    mut reader: impl std::io::Read,
) -> Result<usize> {
    let mut loader = db.bulk();
    let handle = loader.table(table)?;
    let schema = loader.schema(handle).clone();

    let mut parser = RecordParser::new();
    let mut records: Vec<(usize, Vec<String>)> = Vec::new();
    let mut mapping: Option<Vec<usize>> = None;
    let mut inserted = 0usize;
    let mut buf = [0u8; 64 * 1024];
    let mut carry: Vec<u8> = Vec::new();

    loop {
        let n = reader.read(&mut buf).map_err(|err| StoreError::Io(err.to_string()))?;
        if n == 0 {
            break;
        }
        carry.extend_from_slice(&buf[..n]);
        let valid_len = match std::str::from_utf8(&carry) {
            Ok(_) => carry.len(),
            // A multi-byte character cut at the chunk boundary: keep the
            // prefix bytes in the carry for the next chunk.
            Err(err) if err.error_len().is_none() => err.valid_up_to(),
            Err(_) => return Err(StoreError::Csv("invalid UTF-8 in CSV input".to_owned())),
        };
        let chunk = std::str::from_utf8(&carry[..valid_len]).expect("validated prefix");
        for c in chunk.chars() {
            parser.push(c, &mut records)?;
        }
        carry.drain(..valid_len);
        consume_records(
            &mut records,
            &mut loader,
            handle,
            &schema,
            table,
            &mut mapping,
            &mut inserted,
        )?;
    }
    if !carry.is_empty() {
        return Err(StoreError::Csv("truncated UTF-8 sequence at end of CSV input".to_owned()));
    }
    parser.finish(&mut records)?;
    consume_records(
        &mut records,
        &mut loader,
        handle,
        &schema,
        table,
        &mut mapping,
        &mut inserted,
    )?;
    if mapping.is_none() {
        return Err(StoreError::Csv("empty CSV document".to_owned()));
    }
    loader.commit()?;
    Ok(inserted)
}

/// Export a table (all rows, all columns, with header) to CSV text.
pub fn export_csv(table: &Table) -> String {
    let mut records = Vec::with_capacity(table.len() + 1);
    records.push(table.schema().columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>());
    for row in table.rows() {
        records.push(
            row.iter()
                .map(|v| match v {
                    Value::Null => String::new(),
                    other => other.to_string(),
                })
                .collect(),
        );
    }
    to_string(&records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::Database;

    #[test]
    fn parse_simple() {
        let recs = parse("a,b\n1,2\n").unwrap();
        assert_eq!(recs, vec![vec!["a", "b"], vec!["1", "2"]]);
    }

    #[test]
    fn parse_quoted_commas_and_escapes() {
        let recs = parse("\"x,y\",\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(recs, vec![vec!["x,y".to_owned(), "he said \"hi\"".to_owned()]]);
    }

    #[test]
    fn parse_embedded_newline() {
        let recs = parse("\"line1\nline2\",b\n").unwrap();
        assert_eq!(recs[0][0], "line1\nline2");
    }

    #[test]
    fn parse_crlf_and_missing_trailing_newline() {
        let recs = parse("a,b\r\nc,d").unwrap();
        assert_eq!(recs, vec![vec!["a", "b"], vec!["c", "d"]]);
    }

    #[test]
    fn parse_rejects_unterminated_quote() {
        assert!(parse("\"oops").is_err());
    }

    #[test]
    fn round_trip_through_serializer() {
        let recs = vec![vec!["plain".to_owned(), "with,comma".to_owned(), "q\"q".to_owned()]];
        let text = to_string(&recs);
        assert_eq!(parse(&text).unwrap(), recs);
    }

    #[test]
    fn field_conversion() {
        assert_eq!(field_to_value("", DataType::Int).unwrap(), Value::Null);
        assert_eq!(field_to_value("42", DataType::Int).unwrap(), Value::Int(42));
        assert_eq!(field_to_value("1.5", DataType::Float).unwrap(), Value::Float(1.5));
        assert!(field_to_value("x", DataType::Int).is_err());
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("apps")
                .pk("id")
                .column("name", DataType::Text)
                .column("rating", DataType::Float)
                .build(),
        )
        .unwrap();
        db
    }

    #[test]
    fn import_with_reordered_header() {
        let mut db = sample_db();
        let n =
            import_csv(&mut db, "apps", "rating,id,name\n4.5,1,Maps\n,2,\"Chat, Pro\"\n").unwrap();
        assert_eq!(n, 2);
        let t = db.table("apps").unwrap();
        assert_eq!(t.row_by_pk(2).unwrap()[1], Value::from("Chat, Pro"));
        assert_eq!(t.row_by_pk(2).unwrap()[2], Value::Null);
    }

    #[test]
    fn import_rejects_unknown_column() {
        let mut db = sample_db();
        assert!(import_csv(&mut db, "apps", "bogus\n1\n").is_err());
    }

    #[test]
    fn import_rejects_ragged_record() {
        let mut db = sample_db();
        assert!(import_csv(&mut db, "apps", "id,name\n1\n").is_err());
    }

    fn fk_db() -> Database {
        let mut db = sample_db();
        db.create_table(
            TableSchema::builder("reviews")
                .pk("id")
                .column("text", DataType::Text)
                .fk("app_id", "apps", "id")
                .build(),
        )
        .unwrap();
        db
    }

    #[test]
    fn failed_import_rolls_back_and_reports_line() {
        let mut db = sample_db();
        import_csv(&mut db, "apps", "id,name\n1,Keep\n").unwrap();
        // Line 3 has a malformed float: the whole import must be undone.
        let err = import_csv(&mut db, "apps", "id,name,rating\n2,Ok,4.0\n3,Bad,notanumber\n")
            .unwrap_err();
        match err {
            StoreError::CsvRow { line, source } => {
                assert_eq!(line, 3);
                assert!(matches!(*source, StoreError::Csv(_)));
            }
            other => panic!("expected CsvRow, got {other:?}"),
        }
        let t = db.table("apps").unwrap();
        assert_eq!(t.len(), 1, "partial import must be rolled back");
        assert!(t.contains_pk(1));
        assert!(!t.contains_pk(2));
    }

    #[test]
    fn fk_violation_is_typed_with_line_number() {
        let mut db = fk_db();
        import_csv(&mut db, "apps", "id,name\n1,Maps\n").unwrap();
        let err = import_csv(&mut db, "reviews", "id,text,app_id\n1,fine,1\n2,dangling,99\n")
            .unwrap_err();
        match err {
            StoreError::CsvRow { line, source } => {
                assert_eq!(line, 3);
                assert!(matches!(*source, StoreError::ForeignKeyViolation { .. }));
            }
            other => panic!("expected CsvRow, got {other:?}"),
        }
        assert!(db.table("reviews").unwrap().is_empty());
    }

    #[test]
    fn duplicate_pk_is_typed_and_atomic() {
        let mut db = sample_db();
        let err = import_csv(&mut db, "apps", "id,name\n1,Maps\n1,Docs\n").unwrap_err();
        match err {
            StoreError::CsvRow { line, source } => {
                assert_eq!(line, 3);
                assert!(matches!(*source, StoreError::DuplicateKey { .. }));
            }
            other => panic!("expected CsvRow, got {other:?}"),
        }
        assert!(db.table("apps").unwrap().is_empty());
    }

    #[test]
    fn ragged_record_is_an_arity_error_with_line() {
        let mut db = sample_db();
        let err = import_csv(&mut db, "apps", "id,name\n1,Maps\n2\n").unwrap_err();
        match err {
            StoreError::CsvRow { line, source } => {
                assert_eq!(line, 3);
                assert!(matches!(*source, StoreError::ArityMismatch { expected: 2, got: 1, .. }));
            }
            other => panic!("expected CsvRow, got {other:?}"),
        }
        assert!(db.table("apps").unwrap().is_empty());
    }

    #[test]
    fn error_line_accounts_for_embedded_newlines() {
        // Record 2 spans physical lines 2–3 (quoted newline), so the
        // offending duplicate-PK record starts on physical line 4.
        let mut db = sample_db();
        let err = import_csv(&mut db, "apps", "id,name\n1,\"two\nlines\"\n1,Dup\n").unwrap_err();
        match err {
            StoreError::CsvRow { line, source } => {
                assert_eq!(line, 4);
                assert!(matches!(*source, StoreError::DuplicateKey { .. }));
            }
            other => panic!("expected CsvRow, got {other:?}"),
        }
        assert!(db.table("apps").unwrap().is_empty());
    }

    #[test]
    fn rows_may_reference_earlier_rows_of_the_same_document() {
        // FK checks run per insert, so references to rows that appeared
        // earlier in the same CSV document are valid — which is why the
        // import cannot be pre-validated in a constraint-free dry run.
        let mut db = fk_db();
        import_csv(&mut db, "apps", "id,name\n1,Maps\n").unwrap();
        let n = import_csv(&mut db, "reviews", "id,text,app_id\n1,ok,1\n2,also ok,1\n").unwrap();
        assert_eq!(n, 2);
    }

    /// A reader that hands out at most `chunk` bytes per `read` call, so
    /// every boundary case (split UTF-8, split `\r\n`, split `""`) is
    /// exercised.
    struct Trickle<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl std::io::Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn streaming_import_matches_batch_import_at_every_chunk_size() {
        // Multi-byte UTF-8, quoted commas, escaped quotes, embedded and
        // CRLF newlines — every hazard that can straddle a chunk cut.
        let doc =
            "id,name,rating\n1,Müller,4.5\r\n2,\"Chat, \"\"Pro\"\"\",\n3,\"two\nlines\",1.0\n";
        let mut reference = sample_db();
        import_csv(&mut reference, "apps", doc).unwrap();
        for chunk in 1..=doc.len() {
            let mut db = sample_db();
            let n =
                import_csv_reader(&mut db, "apps", Trickle { data: doc.as_bytes(), pos: 0, chunk })
                    .unwrap();
            assert_eq!(n, 3, "chunk size {chunk}");
            assert_eq!(
                db.table("apps").unwrap().rows(),
                reference.table("apps").unwrap().rows(),
                "chunk size {chunk}"
            );
        }
    }

    #[test]
    fn streaming_import_is_atomic_and_reports_physical_lines() {
        // Record 2 spans physical lines 2–3, so the duplicate-PK record
        // starts on line 4 — the same contract as the batch importer,
        // even with the document trickled in 1-byte reads.
        let doc = "id,name\n1,\"two\nlines\"\n1,Dup\n";
        let mut db = sample_db();
        let err =
            import_csv_reader(&mut db, "apps", Trickle { data: doc.as_bytes(), pos: 0, chunk: 1 })
                .unwrap_err();
        match err {
            StoreError::CsvRow { line, source } => {
                assert_eq!(line, 4);
                assert!(matches!(*source, StoreError::DuplicateKey { .. }));
            }
            other => panic!("expected CsvRow, got {other:?}"),
        }
        assert!(db.table("apps").unwrap().is_empty(), "failed stream must roll back");
    }

    #[test]
    fn streaming_import_rejects_bad_utf8() {
        let mut db = sample_db();
        // Truncated 2-byte sequence at EOF, and an invalid byte mid-stream.
        let truncated: &[u8] = b"id,name\n1,M\xc3";
        assert!(matches!(
            import_csv_reader(&mut db, "apps", truncated).unwrap_err(),
            StoreError::Csv(_)
        ));
        let invalid: &[u8] = b"id,name\n1,\xff\n";
        assert!(matches!(
            import_csv_reader(&mut db, "apps", invalid).unwrap_err(),
            StoreError::Csv(_)
        ));
        assert!(db.table("apps").unwrap().is_empty());
    }

    #[test]
    fn export_import_round_trip() {
        let mut db = sample_db();
        import_csv(&mut db, "apps", "id,name,rating\n1,Maps,4.5\n2,Docs,\n").unwrap();
        let text = export_csv(db.table("apps").unwrap());

        let mut db2 = sample_db();
        import_csv(&mut db2, "apps", &text).unwrap();
        assert_eq!(db2.table("apps").unwrap().rows(), db.table("apps").unwrap().rows());
    }
}
