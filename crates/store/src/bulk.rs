//! Batched bulk ingestion: the write fast path of the engine.
//!
//! [`Database::insert`] is convenient but pays per row for work that is
//! constant across a load: a string-keyed table lookup (twice — once to
//! validate, once to append), a linear column-name scan per foreign key,
//! and another string-keyed lookup per referenced table. At paper scale
//! (~1.7M generated rows, see `retro-datasets`) that bookkeeping dominates
//! ingest time.
//!
//! [`BulkLoader`] amortizes all of it to once per batch by **temporarily
//! taking ownership of the target tables**:
//!
//! 1. **Register** each target table once ([`BulkLoader::table`]) — this
//!    moves the table (and, transitively, every table its foreign keys
//!    reference) out of the database and into the loader, resolves the
//!    foreign-key column indices and referenced-table slots, and hands back
//!    a copyable [`TableHandle`]. While the loader lives it holds the
//!    database mutably, so the tables are never observably "missing".
//! 2. **Stage** rows ([`BulkLoader::stage`]) — validate against the *live*
//!    table indexes (so a row may reference a primary key staged earlier in
//!    the same batch, exactly like a row-by-row insert loop) and append
//!    directly. No staging buffers, no second pass over the data: per row
//!    the fast path does the same constraint hash probes as
//!    [`Database::insert`] minus all of the name resolution.
//! 3. **Commit** ([`BulkLoader::commit`]) — hand the tables back. The first
//!    constraint violation instead rolls back *every* registered table to
//!    its pre-batch length (the same truncate-on-error semantics the CSV
//!    importer has always guaranteed) and poisons the loader; dropping the
//!    loader without committing aborts the same way. Either the whole batch
//!    lands or the database is untouched.
//!
//! # Equivalence with the row-by-row path
//!
//! Because staging validates against live indexes with the checks of
//! [`Database::insert`] in the same order, the bulk path accepts exactly
//! the batches a row-by-row loop accepts, produces identical database
//! state, and reports the same first error (wrapped in
//! [`StoreError::BulkRow`] with the offending row's batch position).
//! `tests/ingestion_equivalence.rs` pins this equivalence over randomized
//! batches, including failure cases.
//!
//! # Example
//!
//! ```
//! use retro_store::{Database, DataType, TableSchema, Value};
//!
//! let mut db = Database::new();
//! db.create_table(
//!     TableSchema::builder("persons").pk("id").column("name", DataType::Text).build(),
//! )
//! .unwrap();
//! db.create_table(
//!     TableSchema::builder("movies")
//!         .pk("id")
//!         .column("title", DataType::Text)
//!         .fk("director_id", "persons", "id")
//!         .build(),
//! )
//! .unwrap();
//!
//! let mut loader = db.bulk();
//! let persons = loader.table("persons").unwrap();
//! let movies = loader.table("movies").unwrap();
//! loader.stage(persons, vec![Value::Int(1), Value::from("Luc Besson")]).unwrap();
//! // A staged row may reference a key staged earlier in the same batch:
//! loader.stage(movies, vec![Value::Int(10), Value::from("5th Element"), Value::Int(1)]).unwrap();
//! assert_eq!(loader.commit().unwrap(), 2);
//! assert_eq!(db.table("movies").unwrap().len(), 1);
//! ```

use std::collections::HashMap;

use crate::changelog::TableChange;
use crate::error::StoreError;
use crate::schema::TableSchema;
use crate::table::Table;
use crate::value::Value;
use crate::wal::WalOp;
use crate::{Database, Result};

/// A registered target table of a [`BulkLoader`] (cheap to copy; only valid
/// for the loader that issued it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableHandle(usize);

/// A foreign key with its per-batch name resolution done: the constrained
/// column's index and the loader slot of the referenced table.
struct ResolvedFk {
    /// Index of the constrained column in the owning table.
    col: usize,
    /// Name of the constrained column (for error payloads).
    column_name: String,
    /// Slot in `BulkLoader::tables` of the referenced table (referenced
    /// tables are auto-registered, so this always resolves).
    ref_slot: usize,
}

/// A table temporarily owned by the loader, with its rollback watermark.
struct Owned {
    table: Table,
    /// Row count at registration; rollback truncates back to this.
    pre_len: usize,
    fks: Vec<ResolvedFk>,
}

/// A batched, atomic bulk loader over a [`Database`].
///
/// Obtain one with [`Database::bulk`]; see the [module docs](self) for the
/// staging protocol, the rollback semantics and an example.
pub struct BulkLoader<'db> {
    db: &'db mut Database,
    /// Registered tables, moved out of `db` until commit/drop.
    tables: Vec<Owned>,
    by_name: HashMap<String, usize>,
    /// Rows staged so far (also the batch position in error payloads).
    staged: usize,
    /// Set after a constraint violation rolled the batch back.
    poisoned: bool,
}

impl<'db> BulkLoader<'db> {
    pub(crate) fn new(db: &'db mut Database) -> Self {
        Self { db, tables: Vec::new(), by_name: HashMap::new(), staged: 0, poisoned: false }
    }

    /// Register `name` as a staging target, returning its handle.
    ///
    /// Idempotent — registering a table twice returns the same handle.
    /// Tables referenced by `name`'s foreign keys are registered
    /// transitively so staged parent rows are visible to staged child rows.
    /// Fails only if the table does not exist.
    pub fn table(&mut self, name: &str) -> Result<TableHandle> {
        if let Some(&slot) = self.by_name.get(name) {
            return Ok(TableHandle(slot));
        }
        if !self.db.tables.contains_key(name) {
            return Err(StoreError::UnknownTable(name.to_owned()));
        }
        // Register referenced tables first (terminates because
        // `create_table` only accepts foreign keys into pre-existing
        // tables, so the reference graph is acyclic).
        let fk_decls: Vec<(String, String)> = {
            let schema = self.db.tables[name].schema();
            schema.foreign_keys.iter().map(|fk| (fk.column.clone(), fk.ref_table.clone())).collect()
        };
        let mut fks = Vec::with_capacity(fk_decls.len());
        for (column, ref_table) in fk_decls {
            let ref_slot = self.table(&ref_table)?.0;
            fks.push(ResolvedFk { col: 0, column_name: column, ref_slot });
        }
        let table = self.db.tables.remove(name).expect("checked above");
        for fk in &mut fks {
            fk.col = table.schema().column_index(&fk.column_name).expect("fk validated at create");
        }
        let slot = self.tables.len();
        self.tables.push(Owned { pre_len: table.len(), table, fks });
        self.by_name.insert(name.to_owned(), slot);
        Ok(TableHandle(slot))
    }

    /// Validate one row against the live per-batch indexes and append it to
    /// the table behind `handle`.
    ///
    /// Runs exactly the checks of [`Database::insert`], in the same order —
    /// arity, cell types, primary-key presence/uniqueness (staged rows
    /// count), then foreign keys in declaration order (keys staged earlier
    /// in the batch are visible) — but against handles resolved once at
    /// registration. The first violation **rolls back the whole batch** on
    /// every registered table and poisons the loader; the error is
    /// [`StoreError::BulkRow`] around the violation a row-by-row loop would
    /// have hit.
    pub fn stage(&mut self, handle: TableHandle, row: Vec<Value>) -> Result<()> {
        if self.poisoned {
            return Err(StoreError::BulkPoisoned);
        }
        let result = (|| {
            let own = &self.tables[handle.0];
            own.table.validate_row(&row)?;
            for fk in &own.fks {
                match &row[fk.col] {
                    Value::Null => {}
                    Value::Int(k) => {
                        if !self.tables[fk.ref_slot].table.contains_pk(*k) {
                            return Err(StoreError::ForeignKeyViolation {
                                table: own.table.name().to_owned(),
                                column: fk.column_name.clone(),
                                value: k.to_string(),
                            });
                        }
                    }
                    other => {
                        // Unreachable after the type check (foreign-key
                        // columns are INTEGER by construction); kept to
                        // mirror the row-by-row error payload exactly.
                        return Err(StoreError::TypeMismatch {
                            table: own.table.name().to_owned(),
                            column: fk.column_name.clone(),
                            expected: "INTEGER".to_owned(),
                            got: other
                                .data_type()
                                .map_or_else(|| "NULL".into(), |ty| ty.to_string()),
                        });
                    }
                }
            }
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.tables[handle.0].table.push_unchecked(row);
                self.staged += 1;
                Ok(())
            }
            Err(source) => {
                let table = self.tables[handle.0].table.name().to_owned();
                let row = self.staged;
                self.rollback();
                Err(StoreError::BulkRow { table, row, source: Box::new(source) })
            }
        }
    }

    /// Undo every staged row and mark the loader poisoned. The tables stay
    /// owned until drop reinstalls them (at their pre-batch state).
    fn rollback(&mut self) {
        for own in &mut self.tables {
            own.table.truncate(own.pre_len);
        }
        self.staged = 0;
        self.poisoned = true;
    }

    /// Hint that about `additional` more rows will be staged for `handle`,
    /// pre-sizing the table's row store and primary-key index.
    ///
    /// Purely an optimization — a batch source that knows its cardinality
    /// (a parsed CSV document, a generator) avoids incremental reallocation
    /// during the load. Over- or under-estimating is harmless.
    pub fn reserve(&mut self, handle: TableHandle, additional: usize) {
        self.tables[handle.0].table.reserve(additional);
    }

    /// Number of rows staged so far in this batch.
    pub fn staged_len(&self) -> usize {
        self.staged
    }

    /// The registered table's schema (the loader owns the table, so this is
    /// always current).
    pub fn schema(&self, handle: TableHandle) -> &TableSchema {
        self.tables[handle.0].table.schema()
    }

    /// Finish the batch: hand every table back to the database with the
    /// staged rows in place, returning how many were inserted.
    ///
    /// Staging already validated and applied each row, so a commit after
    /// all-successful stages cannot fail; the `Result` only reports misuse
    /// (committing a loader that already rolled back). For each registered
    /// table that actually grew, one `TableChange::Appended` record (with
    /// the pre-batch length as the start position) lands in the database's
    /// change log — a rolled-back or empty batch records nothing.
    pub fn commit(mut self) -> Result<usize> {
        if self.poisoned {
            return Err(StoreError::BulkPoisoned);
        }
        // On a durable database the whole batch is one WAL record: each
        // grown table's appended row suffix, in slot (parents-first)
        // order. Logged before the tables are handed back — a failed
        // append rolls the batch back, exactly like a constraint
        // violation, so nothing unlogged ever commits.
        if self.db.durability_active() {
            let batch: Vec<(&str, &[Vec<Value>])> = self
                .tables
                .iter()
                .filter(|own| own.table.len() > own.pre_len)
                .map(|own| (own.table.name(), &own.table.rows()[own.pre_len..]))
                .collect();
            if !batch.is_empty() {
                if let Err(err) = self.db.log_op(WalOp::Batch { tables: &batch }) {
                    drop(batch);
                    self.rollback();
                    return Err(err);
                }
            }
        }
        let inserted = self.staged;
        let mut appended: Vec<(String, usize, usize)> = Vec::new();
        for own in self.tables.drain(..) {
            let added = own.table.len() - own.pre_len;
            if added > 0 {
                appended.push((own.table.name().to_owned(), own.pre_len, added));
            }
            self.db.tables.insert(own.table.name().to_owned(), own.table);
        }
        for (name, start, rows) in appended {
            self.db.record_change(&name, TableChange::Appended { start, rows });
        }
        Ok(inserted)
    }
}

impl Drop for BulkLoader<'_> {
    /// Reinstall the owned tables. A loader dropped without [`commit`]
    /// (abort, early `?` return, panic unwind) discards its staged rows
    /// first, so the database reverts to its pre-batch state.
    ///
    /// [`commit`]: BulkLoader::commit
    fn drop(&mut self) {
        for own in self.tables.drain(..) {
            let mut table = own.table;
            table.truncate(own.pre_len);
            self.db.tables.insert(table.name().to_owned(), table);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("persons").pk("id").column("name", DataType::Text).build(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("movies")
                .pk("id")
                .column("title", DataType::Text)
                .fk("director_id", "persons", "id")
                .build(),
        )
        .unwrap();
        db
    }

    #[test]
    fn commit_appends_across_tables() {
        let mut d = db();
        let mut loader = d.bulk();
        let persons = loader.table("persons").unwrap();
        let movies = loader.table("movies").unwrap();
        loader.stage(persons, vec![Value::Int(1), Value::from("Besson")]).unwrap();
        loader.stage(movies, vec![Value::Int(10), Value::from("Leon"), Value::Int(1)]).unwrap();
        loader.stage(movies, vec![Value::Int(11), Value::from("Lucy"), Value::Int(1)]).unwrap();
        assert_eq!(loader.staged_len(), 3);
        assert_eq!(loader.commit().unwrap(), 3);
        assert_eq!(d.table("persons").unwrap().len(), 1);
        assert_eq!(d.table("movies").unwrap().len(), 2);
        assert_eq!(d.table("movies").unwrap().row_by_pk(11).unwrap()[1], Value::from("Lucy"));
    }

    #[test]
    fn registering_a_child_registers_its_parents() {
        let mut d = db();
        let mut loader = d.bulk();
        let movies = loader.table("movies").unwrap();
        // "persons" was pulled in transitively; registering it now must
        // return the existing slot, and staged persons are FK-visible.
        let persons = loader.table("persons").unwrap();
        assert_ne!(movies, persons);
        loader.stage(persons, vec![Value::Int(5), Value::from("Scott")]).unwrap();
        loader.stage(movies, vec![Value::Int(1), Value::from("Alien"), Value::Int(5)]).unwrap();
        assert_eq!(loader.commit().unwrap(), 2);
    }

    #[test]
    fn unknown_table_is_rejected_at_registration() {
        let mut d = db();
        let mut loader = d.bulk();
        assert!(matches!(loader.table("nope"), Err(StoreError::UnknownTable(_))));
    }

    #[test]
    fn forward_reference_within_a_batch_is_a_violation() {
        // Row-by-row equivalence: a movie referencing a person staged LATER
        // must fail, exactly as an insert loop would have failed.
        let mut d = db();
        let mut loader = d.bulk();
        let persons = loader.table("persons").unwrap();
        let movies = loader.table("movies").unwrap();
        let err = loader.stage(movies, vec![Value::Int(1), Value::from("Alien"), Value::Int(5)]);
        match err.unwrap_err() {
            StoreError::BulkRow { table, row, source } => {
                assert_eq!(table, "movies");
                assert_eq!(row, 0);
                assert!(matches!(*source, StoreError::ForeignKeyViolation { .. }));
            }
            other => panic!("expected BulkRow, got {other:?}"),
        }
        // The loader is poisoned; staging more is refused.
        assert!(loader.stage(persons, vec![Value::Int(5), Value::from("Scott")]).is_err());
        assert!(loader.commit().is_err());
        assert!(d.table("movies").unwrap().is_empty());
        assert!(d.table("persons").unwrap().is_empty());
    }

    #[test]
    fn failed_stage_rolls_back_the_whole_batch() {
        let mut d = db();
        d.insert("persons", vec![Value::Int(1), Value::from("kept")]).unwrap();
        let mut loader = d.bulk();
        let persons = loader.table("persons").unwrap();
        loader.stage(persons, vec![Value::Int(2), Value::from("new")]).unwrap();
        let err = loader.stage(persons, vec![Value::Int(1), Value::from("dup")]).unwrap_err();
        assert!(
            matches!(&err, StoreError::BulkRow { row: 1, source, .. }
                if matches!(**source, StoreError::DuplicateKey { .. })),
            "got {err:?}"
        );
        drop(loader);
        let t = d.table("persons").unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.contains_pk(1));
        assert!(!t.contains_pk(2), "rolled-back key must be free again");
    }

    #[test]
    fn duplicate_within_batch_is_caught_in_staging_order() {
        let mut d = db();
        let mut loader = d.bulk();
        let persons = loader.table("persons").unwrap();
        loader.stage(persons, vec![Value::Int(7), Value::from("a")]).unwrap();
        let err = loader.stage(persons, vec![Value::Int(7), Value::from("b")]).unwrap_err();
        assert!(matches!(err, StoreError::BulkRow { row: 1, .. }), "got {err:?}");
    }

    #[test]
    fn dropped_loader_discards_staged_rows() {
        let mut d = db();
        let mut loader = d.bulk();
        let persons = loader.table("persons").unwrap();
        loader.stage(persons, vec![Value::Int(1), Value::from("ghost")]).unwrap();
        drop(loader);
        assert!(d.table("persons").unwrap().is_empty());
        // The key is free for a later batch.
        d.insert("persons", vec![Value::Int(1), Value::from("real")]).unwrap();
    }

    #[test]
    fn type_and_arity_errors_carry_the_row_position() {
        let mut d = db();
        let mut loader = d.bulk();
        let persons = loader.table("persons").unwrap();
        loader.stage(persons, vec![Value::Int(1), Value::from("ok")]).unwrap();
        let err = loader.stage(persons, vec![Value::Int(2)]).unwrap_err(); // arity
        assert!(
            matches!(&err, StoreError::BulkRow { row: 1, source, .. }
                if matches!(**source, StoreError::ArityMismatch { .. })),
            "got {err:?}"
        );
    }

    #[test]
    fn null_fk_is_allowed() {
        let mut d = db();
        let mut loader = d.bulk();
        let movies = loader.table("movies").unwrap();
        loader.stage(movies, vec![Value::Int(1), Value::from("Alien"), Value::Null]).unwrap();
        assert_eq!(loader.commit().unwrap(), 1);
    }

    #[test]
    fn staged_rows_are_queryable_after_commit() {
        let mut d = db();
        let mut loader = d.bulk();
        let persons = loader.table("persons").unwrap();
        for k in 0..100 {
            loader.stage(persons, vec![Value::Int(k), Value::from(format!("p{k}"))]).unwrap();
        }
        loader.commit().unwrap();
        let t = d.table("persons").unwrap();
        assert_eq!(t.len(), 100);
        assert_eq!(t.row_by_pk(42).unwrap()[1], Value::from("p42"));
    }
}
