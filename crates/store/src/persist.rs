//! Binary snapshot persistence for [`Database`].
//!
//! A snapshot is the WAL's compaction point: one checksummed file holding
//! the complete database state — schemas, rows, `write_version`, per-table
//! versions, and the bounded change log — plus the WAL sequence number it
//! covers. Recovery loads the snapshot, then replays only the log records
//! with a higher sequence.
//!
//! # File layout
//!
//! ```text
//! [magic: "RSNP"] [version: u32 LE] [crc: u32 LE] [len: u64 LE] [payload]
//! payload = wal_seq | write_version | tables | table_versions | change_log
//! ```
//!
//! Each table is encoded as schema, declared secondary-index columns, then
//! rows; loading re-creates the indexes before installing the rows, so the
//! rebuilt `crate::index::IndexSet` is bit-identical to the live one.
//!
//! `crc` is [`crate::wal::crc32`] over the payload. The writer goes
//! through a temp file and an atomic rename, so a crash mid-snapshot
//! leaves the previous snapshot intact; a truncated or bit-flipped file
//! is a typed [`StoreError::Corruption`], never a partial load.

use std::path::Path;

use crate::changelog::{ChangeLog, ChangeRecord, TableChange};
use crate::database::Database;
use crate::error::StoreError;
use crate::table::Table;
use crate::wal::{crc32, io_err, put_rows, put_schema, put_str, put_u32, put_u64, Cursor};
use crate::Result;

/// File name of the snapshot inside a durability directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

const MAGIC: &[u8; 4] = b"RSNP";
/// Version 2 added the per-table secondary-index declarations.
const VERSION: u32 = 2;
/// Bytes before the payload: magic + version + crc + payload length.
const HEADER_LEN: usize = 4 + 4 + 4 + 8;

fn put_change(buf: &mut Vec<u8>, change: &TableChange) {
    match change {
        TableChange::Created => buf.push(0),
        TableChange::Appended { start, rows } => {
            buf.push(1);
            put_u64(buf, *start as u64);
            put_u64(buf, *rows as u64);
        }
        TableChange::Updated { rows, relational } => {
            buf.push(2);
            put_u64(buf, *rows as u64);
            buf.push(u8::from(*relational));
        }
        TableChange::Deleted { rows } => {
            buf.push(3);
            put_u64(buf, *rows as u64);
        }
        TableChange::Unknown => buf.push(4),
    }
}

fn read_change(cur: &mut Cursor<'_>) -> Result<TableChange> {
    Ok(match cur.u8("change tag")? {
        0 => TableChange::Created,
        1 => TableChange::Appended {
            start: cur.u64("appended start")? as usize,
            rows: cur.u64("appended rows")? as usize,
        },
        2 => TableChange::Updated {
            rows: cur.u64("updated rows")? as usize,
            relational: cur.u8("updated relational flag")? != 0,
        },
        3 => TableChange::Deleted { rows: cur.u64("deleted rows")? as usize },
        4 => TableChange::Unknown,
        tag => return Err(StoreError::Corruption(format!("unknown change tag {tag}"))),
    })
}

/// Serialize `db` to `path` atomically (temp file + rename). `wal_seq` is
/// the highest WAL sequence the snapshot covers; recovery skips log
/// records at or below it.
pub(crate) fn write_snapshot(db: &Database, path: &Path, wal_seq: u64) -> Result<()> {
    let mut payload = Vec::with_capacity(4096);
    put_u64(&mut payload, wal_seq);
    put_u64(&mut payload, db.write_version);
    put_u32(&mut payload, db.tables.len() as u32);
    for table in db.tables.values() {
        put_schema(&mut payload, table.schema());
        let index_cols = table.secondary_index_columns();
        put_u32(&mut payload, index_cols.len() as u32);
        for col in index_cols {
            put_u32(&mut payload, col as u32);
        }
        put_rows(&mut payload, table.rows());
    }
    put_u32(&mut payload, db.table_versions.len() as u32);
    for (name, version) in &db.table_versions {
        put_str(&mut payload, name);
        put_u64(&mut payload, *version);
    }
    let log = &db.change_log;
    put_u64(&mut payload, log.capacity() as u64);
    put_u64(&mut payload, log.base());
    put_u32(&mut payload, log.len() as u32);
    for record in log.records() {
        put_u64(&mut payload, record.version);
        put_str(&mut payload, &record.table);
        put_change(&mut payload, &record.change);
    }

    let mut out = Vec::with_capacity(payload.len() + HEADER_LEN);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u32(&mut out, crc32(&payload));
    put_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);

    let tmp = path.with_extension("bin.tmp");
    std::fs::write(&tmp, &out).map_err(io_err)?;
    std::fs::rename(&tmp, path).map_err(io_err)
}

/// Load the snapshot at `path`. Returns `None` when no snapshot exists
/// (fresh directory — recovery starts from an empty database); any
/// structural damage is a typed error.
pub(crate) fn load_snapshot(path: &Path) -> Result<Option<(Database, u64)>> {
    let data = match std::fs::read(path) {
        Ok(data) => data,
        Err(err) if err.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(err) => return Err(io_err(err)),
    };
    if data.len() < HEADER_LEN {
        return Err(StoreError::Corruption("snapshot shorter than its header".into()));
    }
    if &data[..4] != MAGIC {
        return Err(StoreError::Corruption("snapshot magic mismatch".into()));
    }
    let version = u32::from_le_bytes(data[4..8].try_into().expect("4-byte slice"));
    if version != VERSION {
        return Err(StoreError::Corruption(format!("unsupported snapshot version {version}")));
    }
    let stored_crc = u32::from_le_bytes(data[8..12].try_into().expect("4-byte slice"));
    let len = u64::from_le_bytes(data[12..20].try_into().expect("8-byte slice")) as usize;
    let payload = &data[HEADER_LEN..];
    if payload.len() != len {
        return Err(StoreError::Corruption(format!(
            "snapshot payload length mismatch: header says {len}, file holds {}",
            payload.len()
        )));
    }
    if crc32(payload) != stored_crc {
        return Err(StoreError::Corruption("snapshot checksum mismatch".into()));
    }

    let mut cur = Cursor::new(payload);
    let wal_seq = cur.u64("snapshot wal sequence")?;
    let write_version = cur.u64("snapshot write version")?;

    let mut db = Database::default();
    let n_tables = cur.u32("table count")? as usize;
    for _ in 0..n_tables {
        let schema = cur.schema()?;
        let n_indexes = cur.u32("secondary index count")? as usize;
        let mut index_cols = Vec::with_capacity(n_indexes.min(1024));
        for _ in 0..n_indexes {
            index_cols.push(cur.u32("secondary index column")? as usize);
        }
        let rows = cur.rows()?;
        let name = schema.name.clone();
        let mut table = Table::new(schema);
        for col in index_cols {
            if col >= table.schema().columns.len() {
                return Err(StoreError::Corruption(format!(
                    "snapshot declares an index on column {col} of `{name}`, which has only {} columns",
                    table.schema().columns.len()
                )));
            }
            table.create_secondary_index(col).map_err(|err| {
                StoreError::Corruption(format!("snapshot declares an invalid index: {err}"))
            })?;
        }
        table.reserve(rows.len());
        table.set_rows(rows);
        if db.tables.insert(name.clone(), table).is_some() {
            return Err(StoreError::Corruption(format!("snapshot repeats table `{name}`")));
        }
    }

    let n_versions = cur.u32("table version count")? as usize;
    for _ in 0..n_versions {
        let name = cur.string("versioned table name")?;
        let version = cur.u64("table version")?;
        db.table_versions.insert(name, version);
    }

    let capacity = cur.u64("change log capacity")? as usize;
    let base = cur.u64("change log base")?;
    let n_records = cur.u32("change record count")? as usize;
    if n_records > capacity.max(1) {
        return Err(StoreError::Corruption(format!(
            "change log holds {n_records} records but its capacity is {capacity}"
        )));
    }
    let mut records = Vec::with_capacity(n_records);
    for _ in 0..n_records {
        let version = cur.u64("change record version")?;
        let table = cur.string("change record table")?;
        let change = read_change(&mut cur)?;
        records.push(ChangeRecord { version, table, change });
    }
    if !cur.is_empty() {
        return Err(StoreError::Corruption("trailing bytes after snapshot payload".into()));
    }

    db.write_version = write_version;
    db.change_log = ChangeLog::restore(capacity, base, records);
    Ok(Some((db, wal_seq)))
}
