//! Table schemas, key constraints and the introspection RETRO relies on.
//!
//! §3.2 of the paper extracts three kinds of relationships from the schema:
//! (a) row-wise pairs of text columns in one table, (b) one-to-many PK/FK
//! relationships, and (c) many-to-many relationships realized by *link
//! tables* (tables of foreign-key pairs). The helpers here make those three
//! shapes recognizable without any knowledge of the data.

use crate::value::DataType;

/// A column definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (unique within a table).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
}

impl ColumnDef {
    /// Shorthand constructor.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        Self { name: name.into(), ty }
    }
}

/// A foreign-key constraint: `table.column` references `ref_table.ref_column`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ForeignKey {
    /// Constrained column in the owning table.
    pub column: String,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced column (must be the referenced table's primary key).
    pub ref_column: String,
}

/// The schema of one table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (unique within a database).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Index into `columns` of the primary key, if declared.
    pub primary_key: Option<usize>,
    /// Foreign-key constraints.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Start building a schema for `name`.
    pub fn builder(name: impl Into<String>) -> TableSchemaBuilder {
        TableSchemaBuilder {
            schema: TableSchema {
                name: name.into(),
                columns: Vec::new(),
                primary_key: None,
                foreign_keys: Vec::new(),
            },
        }
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column definition by name.
    pub fn column(&self, name: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == name)
    }

    /// Indices of all text columns.
    pub fn text_columns(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.ty == DataType::Text)
            .map(|(i, _)| i)
            .collect()
    }

    /// The foreign key constraining `column`, if any.
    pub fn foreign_key_on(&self, column: &str) -> Option<&ForeignKey> {
        self.foreign_keys.iter().find(|fk| fk.column == column)
    }

    /// True when this table is a pure n:m *link table*: every column is
    /// either a foreign key or the primary key, it has no text columns, and
    /// it carries at least two foreign keys.
    ///
    /// The paper's Table 1 counts such tables separately ("tables which only
    /// express n:m relations"); relationship extraction collapses them into
    /// a single many-to-many relation group.
    pub fn is_link_table(&self) -> bool {
        if self.foreign_keys.len() < 2 {
            return false;
        }
        self.columns.iter().enumerate().all(|(i, c)| {
            Some(i) == self.primary_key
                || self.foreign_key_on(&c.name).is_some() && c.ty != DataType::Text
        })
    }
}

/// Fluent builder for [`TableSchema`].
pub struct TableSchemaBuilder {
    schema: TableSchema,
}

impl TableSchemaBuilder {
    /// Add a column.
    pub fn column(mut self, name: impl Into<String>, ty: DataType) -> Self {
        self.schema.columns.push(ColumnDef::new(name, ty));
        self
    }

    /// Add an `INTEGER PRIMARY KEY` column named `name`.
    pub fn pk(mut self, name: impl Into<String>) -> Self {
        self.schema.columns.push(ColumnDef::new(name, DataType::Int));
        self.schema.primary_key = Some(self.schema.columns.len() - 1);
        self
    }

    /// Declare the most recently added column as the primary key.
    pub fn primary_key_last(mut self) -> Self {
        assert!(!self.schema.columns.is_empty(), "primary_key_last on empty schema");
        self.schema.primary_key = Some(self.schema.columns.len() - 1);
        self
    }

    /// Add an `INTEGER` column that references `ref_table.ref_column`.
    pub fn fk(
        mut self,
        name: impl Into<String>,
        ref_table: impl Into<String>,
        ref_column: impl Into<String>,
    ) -> Self {
        let name = name.into();
        self.schema.columns.push(ColumnDef::new(name.clone(), DataType::Int));
        self.schema.foreign_keys.push(ForeignKey {
            column: name,
            ref_table: ref_table.into(),
            ref_column: ref_column.into(),
        });
        self
    }

    /// Finish building.
    pub fn build(self) -> TableSchema {
        self.schema
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movies() -> TableSchema {
        TableSchema::builder("movies")
            .pk("id")
            .column("title", DataType::Text)
            .column("original_language", DataType::Text)
            .column("budget", DataType::Float)
            .fk("director_id", "persons", "id")
            .build()
    }

    #[test]
    fn builder_assembles_schema() {
        let s = movies();
        assert_eq!(s.name, "movies");
        assert_eq!(s.columns.len(), 5);
        assert_eq!(s.primary_key, Some(0));
        assert_eq!(s.foreign_keys.len(), 1);
    }

    #[test]
    fn column_lookup() {
        let s = movies();
        assert_eq!(s.column_index("budget"), Some(3));
        assert_eq!(s.column_index("nope"), None);
        assert_eq!(s.column("title").map(|c| c.ty), Some(DataType::Text));
    }

    #[test]
    fn text_columns_found() {
        assert_eq!(movies().text_columns(), vec![1, 2]);
    }

    #[test]
    fn fk_lookup() {
        let s = movies();
        assert_eq!(s.foreign_key_on("director_id").map(|f| f.ref_table.as_str()), Some("persons"));
        assert!(s.foreign_key_on("title").is_none());
    }

    #[test]
    fn link_table_detection() {
        let link = TableSchema::builder("movie_genre")
            .fk("movie_id", "movies", "id")
            .fk("genre_id", "genres", "id")
            .build();
        assert!(link.is_link_table());
        assert!(!movies().is_link_table());

        // A table with two FKs plus a text payload is NOT a pure link table.
        let annotated = TableSchema::builder("cast")
            .fk("movie_id", "movies", "id")
            .fk("person_id", "persons", "id")
            .column("role", DataType::Text)
            .build();
        assert!(!annotated.is_link_table());
    }

    #[test]
    fn single_fk_is_not_link_table() {
        let t = TableSchema::builder("reviews").pk("id").fk("movie_id", "movies", "id").build();
        assert!(!t.is_link_table());
    }
}
