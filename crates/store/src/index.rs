//! Secondary indexes: the per-table `IndexSet`.
//!
//! Every [`Table`](crate::Table) owns one `IndexSet` bundling the i64
//! primary-key hash index (unique: key → row position) with any number of
//! secondary equality indexes (non-unique: value → sorted posting list of
//! row positions). Secondary indexes exist for `INTEGER` and `TEXT`
//! columns — the two types equality predicates and foreign keys touch —
//! and are maintained incrementally through every mutation path the table
//! has: append, truncate (bulk rollback), positional removal (DELETE),
//! wholesale replacement (WAL replay of unscoped edits), and in-place cell
//! updates.
//!
//! Posting lists are kept sorted by row position. Appends only ever add
//! the largest position, so the order is free on the hot ingest path;
//! truncation prunes each affected list's tail with one binary search;
//! probes return the list as a slice, already in scan order, which keeps
//! index-driven query results bit-identical to scan-driven ones.
//!
//! `NULL` is never indexed: SQL equality is false against `NULL`, and the
//! primary key rejects it outright.
//!
//! Who creates indexes:
//! * [`Database::create_table`](crate::Database::create_table)
//!   auto-indexes every foreign-key column (logged `CREATE TABLE` replays
//!   re-derive them from the schema, so they survive recovery for free),
//! * [`Database::create_index`](crate::Database::create_index) declares
//!   one explicitly (WAL-logged and recorded in snapshots, so recovery
//!   rebuilds it bit-identically).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::value::Value;

/// Multiply–xorshift hasher for integer keys, FNV-1a for byte keys.
///
/// Primary keys are integers under the engine's control (dense, often
/// sequential), so SipHash's DoS resistance buys nothing here while its
/// per-probe cost shows up directly in ingest throughput — every insert
/// probes the key index at least once, and every foreign key probes the
/// referenced table's. A Fibonacci multiply plus an xor-shift mixes the low
/// bits sequential keys differ in across the whole word in a couple of
/// cycles. Text keys (short human-readable strings) take the FNV-1a byte
/// path.
#[derive(Clone, Default)]
pub(crate) struct PkHasher(u64);

impl Hasher for PkHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Byte fallback (string keys, length prefixes): FNV-1a.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_i64(&mut self, i: i64) {
        let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 32;
        self.0 = x;
    }
}

pub(crate) type FastBuild = BuildHasherDefault<PkHasher>;
type PkIndex = HashMap<i64, usize, FastBuild>;

/// One secondary equality index: value → sorted row positions.
///
/// Typed by the indexed column: integer columns hash raw `i64`s, text
/// columns hash the string bytes. Probes on text borrow the needle
/// (`&str`) — no per-probe allocation.
#[derive(Clone, Debug)]
enum IndexMap {
    Int(HashMap<i64, Vec<u32>, FastBuild>),
    Text(HashMap<String, Vec<u32>, FastBuild>),
}

impl IndexMap {
    fn clear(&mut self) {
        match self {
            IndexMap::Int(m) => m.clear(),
            IndexMap::Text(m) => m.clear(),
        }
    }

    fn distinct(&self) -> usize {
        match self {
            IndexMap::Int(m) => m.len(),
            IndexMap::Text(m) => m.len(),
        }
    }

    /// Append `pos` to `value`'s posting list. `pos` must exceed every
    /// position already indexed (append-only discipline keeps lists
    /// sorted without a search).
    fn insert_append(&mut self, value: &Value, pos: u32) {
        match (self, value) {
            (IndexMap::Int(m), Value::Int(k)) => m.entry(*k).or_default().push(pos),
            (IndexMap::Text(m), Value::Text(s)) => {
                // One allocation per *new distinct value*; repeat values
                // hit the occupied entry without cloning.
                match m.get_mut(s.as_str()) {
                    Some(list) => list.push(pos),
                    None => {
                        m.insert(s.clone(), vec![pos]);
                    }
                }
            }
            // NULL (or a value of the wrong shape, which validation
            // prevents) is not indexed.
            _ => {}
        }
    }

    /// Insert `pos` into `value`'s posting list at its sorted position
    /// (cell updates write mid-table).
    fn insert_sorted(&mut self, value: &Value, pos: u32) {
        let list = match (self, value) {
            (IndexMap::Int(m), Value::Int(k)) => m.entry(*k).or_default(),
            (IndexMap::Text(m), Value::Text(s)) => match m.get_mut(s.as_str()) {
                Some(list) => list,
                None => m.entry(s.clone()).or_default(),
            },
            _ => return,
        };
        let at = list.partition_point(|&p| p < pos);
        list.insert(at, pos);
    }

    /// Remove `pos` from `value`'s posting list, dropping the list when it
    /// empties (distinct counts stay honest).
    fn remove(&mut self, value: &Value, pos: u32) {
        match (self, value) {
            (IndexMap::Int(m), Value::Int(k)) => {
                if let Some(list) = m.get_mut(k) {
                    if let Ok(at) = list.binary_search(&pos) {
                        list.remove(at);
                    }
                    if list.is_empty() {
                        m.remove(k);
                    }
                }
            }
            (IndexMap::Text(m), Value::Text(s)) => {
                if let Some(list) = m.get_mut(s.as_str()) {
                    if let Ok(at) = list.binary_search(&pos) {
                        list.remove(at);
                    }
                    if list.is_empty() {
                        m.remove(s.as_str());
                    }
                }
            }
            _ => {}
        }
    }

    /// Drop every indexed position `>= len` for `value` (bulk rollback:
    /// the doomed positions are exactly the list's tail).
    fn truncate_value(&mut self, value: &Value, len: u32) {
        match (self, value) {
            (IndexMap::Int(m), Value::Int(k)) => {
                if let Some(list) = m.get_mut(k) {
                    list.truncate(list.partition_point(|&p| p < len));
                    if list.is_empty() {
                        m.remove(k);
                    }
                }
            }
            (IndexMap::Text(m), Value::Text(s)) => {
                if let Some(list) = m.get_mut(s.as_str()) {
                    list.truncate(list.partition_point(|&p| p < len));
                    if list.is_empty() {
                        m.remove(s.as_str());
                    }
                }
            }
            _ => {}
        }
    }

    fn probe<'a>(&'a self, key: &Value) -> &'a [u32] {
        match (self, key) {
            (IndexMap::Int(m), Value::Int(k)) => m.get(k).map_or(&[], Vec::as_slice),
            // An integral float literal equals the integer it names under
            // SQL comparison semantics; probe the int index through it.
            (IndexMap::Int(m), Value::Float(x)) if x.fract() == 0.0 && x.abs() < 2f64.powi(63) => {
                m.get(&(*x as i64)).map_or(&[], Vec::as_slice)
            }
            (IndexMap::Text(m), Value::Text(s)) => m.get(s.as_str()).map_or(&[], Vec::as_slice),
            // Type-checked columns cannot hold a value of another shape:
            // an equality against one matches nothing.
            _ => &[],
        }
    }

    fn probe_int<'a>(&'a self, key: i64) -> &'a [u32] {
        match self {
            IndexMap::Int(m) => m.get(&key).map_or(&[], Vec::as_slice),
            IndexMap::Text(_) => &[],
        }
    }

    fn probe_text<'a>(&'a self, key: &str) -> &'a [u32] {
        match self {
            IndexMap::Text(m) => m.get(key).map_or(&[], Vec::as_slice),
            IndexMap::Int(_) => &[],
        }
    }
}

/// A secondary index over one column.
#[derive(Clone, Debug)]
struct ColumnIndex {
    col: usize,
    map: IndexMap,
}

/// All indexes of one table: the unique primary-key index plus secondary
/// equality indexes, kept coherent by [`Table`](crate::Table)'s mutation
/// hooks.
#[derive(Clone, Debug, Default)]
pub(crate) struct IndexSet {
    /// Primary-key column, when the schema declares one.
    pk_col: Option<usize>,
    /// primary-key value (as i64) → row position.
    pk: PkIndex,
    /// Secondary indexes, ordered by column position (deterministic
    /// iteration for EXPLAIN and stats).
    secondary: Vec<ColumnIndex>,
}

impl IndexSet {
    pub(crate) fn new(pk_col: Option<usize>) -> Self {
        Self { pk_col, pk: PkIndex::default(), secondary: Vec::new() }
    }

    // ---- primary key ----------------------------------------------------

    pub(crate) fn pk_lookup(&self, key: i64) -> Option<usize> {
        self.pk.get(&key).copied()
    }

    pub(crate) fn contains_pk(&self, key: i64) -> bool {
        self.pk.contains_key(&key)
    }

    pub(crate) fn reserve_pk(&mut self, additional: usize) {
        if self.pk_col.is_some() {
            self.pk.reserve(additional);
        }
    }

    // ---- secondary index lifecycle --------------------------------------

    /// True when a secondary index exists on `col`.
    pub(crate) fn has_secondary(&self, col: usize) -> bool {
        self.secondary.iter().any(|ix| ix.col == col)
    }

    /// Columns carrying a secondary index, in column order.
    pub(crate) fn secondary_columns(&self) -> impl Iterator<Item = usize> + '_ {
        self.secondary.iter().map(|ix| ix.col)
    }

    /// Create (and backfill) a secondary index on `col`. `int_keyed`
    /// selects the key type; `rows` is the table's current row set.
    /// Returns `false` when the column is already indexed.
    pub(crate) fn create_secondary(
        &mut self,
        col: usize,
        int_keyed: bool,
        rows: &[Vec<Value>],
    ) -> bool {
        if self.has_secondary(col) {
            return false;
        }
        let map = if int_keyed {
            IndexMap::Int(HashMap::default())
        } else {
            IndexMap::Text(HashMap::default())
        };
        let mut ix = ColumnIndex { col, map };
        for (pos, row) in rows.iter().enumerate() {
            ix.map.insert_append(&row[col], pos as u32);
        }
        let at = self.secondary.partition_point(|other| other.col < col);
        self.secondary.insert(at, ix);
        true
    }

    // ---- probes ----------------------------------------------------------

    /// Row positions (sorted ascending) whose `col` equals `key`, or
    /// `None` when `col` carries no secondary index. `Some(&[])` means the
    /// index exists and proves no row matches.
    pub(crate) fn probe<'a>(&'a self, col: usize, key: &Value) -> Option<&'a [u32]> {
        self.secondary.iter().find(|ix| ix.col == col).map(|ix| ix.map.probe(key))
    }

    /// [`Self::probe`] with a raw integer key (FK validation hot path).
    pub(crate) fn probe_int(&self, col: usize, key: i64) -> Option<&[u32]> {
        self.secondary.iter().find(|ix| ix.col == col).map(|ix| ix.map.probe_int(key))
    }

    /// [`Self::probe`] with a borrowed string key (extraction hot path —
    /// no per-probe allocation).
    pub(crate) fn probe_text<'a>(&'a self, col: usize, key: &str) -> Option<&'a [u32]> {
        self.secondary.iter().find(|ix| ix.col == col).map(|ix| ix.map.probe_text(key))
    }

    /// Exact distinct (non-NULL) value count for an indexed column —
    /// planner selectivity input. `None` when `col` is not indexed.
    pub(crate) fn distinct(&self, col: usize) -> Option<usize> {
        self.secondary.iter().find(|ix| ix.col == col).map(|ix| ix.map.distinct())
    }

    // ---- maintenance (called by Table's mutation hooks) ------------------

    /// Index a freshly appended row at position `pos` (must exceed all
    /// indexed positions).
    pub(crate) fn note_append(&mut self, row: &[Value], pos: usize) {
        if let Some(pk) = self.pk_col {
            if let Value::Int(k) = row[pk] {
                self.pk.insert(k, pos);
            }
        }
        for ix in &mut self.secondary {
            ix.map.insert_append(&row[ix.col], pos as u32);
        }
    }

    /// Un-index rows at positions `>= len`; `dropped` is the slice being
    /// removed (the table's tail).
    pub(crate) fn note_truncate(&mut self, dropped: &[Vec<Value>], len: usize) {
        if let Some(pk) = self.pk_col {
            for row in dropped {
                if let Value::Int(k) = row[pk] {
                    self.pk.remove(&k);
                }
            }
        }
        for ix in &mut self.secondary {
            for row in dropped {
                ix.map.truncate_value(&row[ix.col], len as u32);
            }
        }
    }

    /// Rebuild everything from `rows` (positional removals and wholesale
    /// replacement renumber surviving rows; incremental repair would cost
    /// as much as rebuilding).
    pub(crate) fn rebuild(&mut self, rows: &[Vec<Value>]) {
        self.pk.clear();
        for ix in &mut self.secondary {
            ix.map.clear();
        }
        for (pos, row) in rows.iter().enumerate() {
            if let Some(pk) = self.pk_col {
                if let Some(&Value::Int(k)) = row.get(pk) {
                    self.pk.insert(k, pos);
                }
            }
            for ix in &mut self.secondary {
                if let Some(value) = row.get(ix.col) {
                    ix.map.insert_append(value, pos as u32);
                }
            }
        }
    }

    /// Move a cell from `old` to `new` at row position `pos`.
    pub(crate) fn note_cell_update(&mut self, col: usize, old: &Value, new: &Value, pos: usize) {
        for ix in &mut self.secondary {
            if ix.col == col && old != new {
                ix.map.remove(old, pos as u32);
                ix.map.insert_sorted(new, pos as u32);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::Int(1), Value::from("a"), Value::Int(10)],
            vec![Value::Int(2), Value::from("b"), Value::Int(10)],
            vec![Value::Int(3), Value::from("a"), Value::Null],
        ]
    }

    fn indexed() -> IndexSet {
        let rows = sample_rows();
        let mut set = IndexSet::new(Some(0));
        set.rebuild(&rows);
        set.create_secondary(1, false, &rows);
        set.create_secondary(2, true, &rows);
        set
    }

    #[test]
    fn backfill_and_probe() {
        let set = indexed();
        assert_eq!(set.probe_text(1, "a"), Some(&[0u32, 2][..]));
        assert_eq!(set.probe_text(1, "zzz"), Some(&[][..]));
        assert_eq!(set.probe_int(2, 10), Some(&[0u32, 1][..]));
        assert_eq!(set.probe(2, &Value::Float(10.0)), Some(&[0u32, 1][..]));
        assert_eq!(set.probe(1, &Value::Int(7)), Some(&[][..])); // type mismatch
        assert_eq!(set.probe(0, &Value::Int(1)), None); // pk col: no secondary
        assert_eq!(set.distinct(1), Some(2));
        assert_eq!(set.distinct(2), Some(1)); // NULL not indexed
    }

    #[test]
    fn append_keeps_lists_sorted() {
        let mut set = indexed();
        set.note_append(&[Value::Int(4), Value::from("a"), Value::Int(10)], 3);
        assert_eq!(set.probe_text(1, "a"), Some(&[0u32, 2, 3][..]));
        assert_eq!(set.probe_int(2, 10), Some(&[0u32, 1, 3][..]));
        assert_eq!(set.pk_lookup(4), Some(3));
    }

    #[test]
    fn truncate_prunes_tails() {
        let mut set = indexed();
        let rows = sample_rows();
        set.note_truncate(&rows[1..], 1);
        assert_eq!(set.probe_text(1, "a"), Some(&[0u32][..]));
        assert_eq!(set.probe_text(1, "b"), Some(&[][..]));
        assert_eq!(set.distinct(1), Some(1)); // emptied list dropped
        assert!(!set.contains_pk(2));
        assert!(set.contains_pk(1));
    }

    #[test]
    fn cell_update_moves_postings() {
        let mut set = indexed();
        set.note_cell_update(1, &Value::from("a"), &Value::from("b"), 0);
        assert_eq!(set.probe_text(1, "a"), Some(&[2u32][..]));
        assert_eq!(set.probe_text(1, "b"), Some(&[0u32, 1][..]));
        // NULL transitions: un-index and re-index.
        set.note_cell_update(2, &Value::Int(10), &Value::Null, 1);
        assert_eq!(set.probe_int(2, 10), Some(&[0u32][..]));
        set.note_cell_update(2, &Value::Null, &Value::Int(11), 1);
        assert_eq!(set.probe_int(2, 11), Some(&[1u32][..]));
    }

    #[test]
    fn rebuild_matches_incremental() {
        let mut incremental = indexed();
        incremental.note_append(&[Value::Int(9), Value::from("c"), Value::Int(12)], 3);
        incremental.note_cell_update(1, &Value::from("b"), &Value::from("c"), 1);

        let mut rows = sample_rows();
        rows.push(vec![Value::Int(9), Value::from("c"), Value::Int(12)]);
        rows[1][1] = Value::from("c");
        let mut rebuilt = IndexSet::new(Some(0));
        rebuilt.create_secondary(1, false, &[]);
        rebuilt.create_secondary(2, true, &[]);
        rebuilt.rebuild(&rows);

        for needle in ["a", "b", "c"] {
            assert_eq!(incremental.probe_text(1, needle), rebuilt.probe_text(1, needle));
        }
        for key in [10, 11, 12] {
            assert_eq!(incremental.probe_int(2, key), rebuilt.probe_int(2, key));
        }
    }

    #[test]
    fn create_secondary_is_idempotent() {
        let mut set = indexed();
        assert!(!set.create_secondary(1, false, &sample_rows()));
        assert_eq!(set.secondary_columns().collect::<Vec<_>>(), vec![1, 2]);
    }
}
