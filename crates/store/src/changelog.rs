//! The bounded change log behind delta-scoped refresh.
//!
//! [`crate::Database::write_version`] answers "did anything change?" with
//! one integer compare; the change log answers the follow-up question
//! "what changed?" precisely enough for an observer to maintain derived
//! state incrementally. Every mutating operation appends one
//! [`ChangeRecord`] — which table, what kind of change, and the write
//! version the change produced — and `retro-core`'s delta refresh replays
//! the records it has not seen yet instead of re-reading the world.
//!
//! The log is **bounded**: it keeps the most recent
//! [`ChangeLog::capacity`] records and evicts the oldest beyond that.
//! [`ChangeLog::changes_since`] returns `None` once eviction has eaten
//! past the requested version, which observers must treat as "anything may
//! have changed" (in `retro-core` that triggers the full-refresh
//! fallback). Records are deliberately small — positions for appends,
//! counts for everything else — so the log's memory use is bounded by
//! `capacity`, not by the size of the mutations it describes.

use std::collections::VecDeque;

/// What one mutation did to one table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableChange {
    /// The table was created (empty).
    Created,
    /// `rows` rows were appended starting at position `start`; no existing
    /// row was touched. The positions stay valid until a `Deleted` record
    /// for the same table appears later in the log.
    Appended {
        /// Position of the first appended row.
        start: usize,
        /// Number of appended rows.
        rows: usize,
    },
    /// Cells of `rows` existing rows were rewritten in place. `relational`
    /// is true when a TEXT or foreign-key column was assigned — the
    /// changes that can alter the text-value graph downstream; an update
    /// confined to plain numeric columns cannot.
    Updated {
        /// Number of rows with at least one rewritten cell.
        rows: usize,
        /// True when a TEXT or foreign-key column was assigned.
        relational: bool,
    },
    /// `rows` rows were removed; positions of the survivors shifted.
    Deleted {
        /// Number of removed rows.
        rows: usize,
    },
    /// The table was handed out via [`crate::Database::table_mut`]:
    /// unchecked mutable access, so anything may have happened.
    Unknown,
}

/// One recorded mutation: the table, the change, and the write version the
/// mutation produced (each record owns exactly one version bump).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChangeRecord {
    /// [`crate::Database::write_version`] immediately after this change.
    pub version: u64,
    /// Name of the mutated table.
    pub table: String,
    /// What happened.
    pub change: TableChange,
}

/// A bounded FIFO of [`ChangeRecord`]s. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct ChangeLog {
    records: VecDeque<ChangeRecord>,
    capacity: usize,
    /// Oldest `since` argument the log can still answer: eviction of a
    /// record with version `v` raises this to `v`.
    base: u64,
}

/// Default number of records retained (see [`ChangeLog::capacity`]).
pub const DEFAULT_CHANGE_LOG_CAPACITY: usize = 4096;

impl Default for ChangeLog {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CHANGE_LOG_CAPACITY)
    }
}

impl ChangeLog {
    /// An empty log retaining at most `capacity` records (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self { records: VecDeque::new(), capacity: capacity.max(1), base: 0 }
    }

    /// Maximum number of records retained before the oldest is evicted.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Change the retention bound, evicting oldest records if the log
    /// already exceeds it.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.records.len() > self.capacity {
            self.evict_oldest();
        }
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append a record, evicting the oldest if the log is full.
    pub(crate) fn push(&mut self, record: ChangeRecord) {
        if self.records.len() == self.capacity {
            self.evict_oldest();
        }
        self.records.push_back(record);
    }

    fn evict_oldest(&mut self) {
        if let Some(evicted) = self.records.pop_front() {
            self.base = evicted.version;
        }
    }

    /// Oldest `since` argument still answerable (snapshot serialization).
    pub(crate) fn base(&self) -> u64 {
        self.base
    }

    /// Retained records, oldest first (snapshot serialization).
    pub(crate) fn records(&self) -> impl Iterator<Item = &ChangeRecord> {
        self.records.iter()
    }

    /// Rebuild the log from persisted parts (snapshot recovery). The
    /// records must already respect `capacity`; the writer serialized a
    /// log that did, so a violation here means the snapshot is corrupt
    /// and the caller rejects it before calling this.
    pub(crate) fn restore(capacity: usize, base: u64, records: Vec<ChangeRecord>) -> Self {
        Self { records: records.into(), capacity: capacity.max(1), base }
    }

    /// Every change recorded after write version `since`, oldest first, or
    /// `None` when eviction has truncated the log past `since` (the
    /// history is incomplete and the observer must assume anything
    /// changed).
    pub fn changes_since(&self, since: u64) -> Option<Vec<&ChangeRecord>> {
        if since < self.base {
            return None;
        }
        Some(self.records.iter().filter(|r| r.version > since).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(version: u64) -> ChangeRecord {
        ChangeRecord { version, table: "t".into(), change: TableChange::Created }
    }

    #[test]
    fn changes_since_filters_by_version() {
        let mut log = ChangeLog::with_capacity(10);
        for v in 1..=5 {
            log.push(rec(v));
        }
        let since_2 = log.changes_since(2).unwrap();
        assert_eq!(since_2.iter().map(|r| r.version).collect::<Vec<_>>(), vec![3, 4, 5]);
        assert!(log.changes_since(5).unwrap().is_empty());
        assert!(log.changes_since(0).is_some());
    }

    #[test]
    fn overflow_truncates_history() {
        let mut log = ChangeLog::with_capacity(3);
        for v in 1..=5 {
            log.push(rec(v));
        }
        assert_eq!(log.len(), 3);
        // Versions 1 and 2 were evicted: asking for history from before
        // version 2 is unanswerable, from 2 onward still is.
        assert_eq!(log.changes_since(0), None);
        assert_eq!(log.changes_since(1), None);
        let since_2 = log.changes_since(2).unwrap();
        assert_eq!(since_2.iter().map(|r| r.version).collect::<Vec<_>>(), vec![3, 4, 5]);
    }

    #[test]
    fn shrinking_capacity_evicts_oldest() {
        let mut log = ChangeLog::with_capacity(10);
        for v in 1..=5 {
            log.push(rec(v));
        }
        log.set_capacity(2);
        assert_eq!(log.len(), 2);
        assert_eq!(log.changes_since(2), None);
        assert_eq!(log.changes_since(3).unwrap().len(), 2);
    }
}
