//! The database: a named collection of tables with cross-table constraints.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::bulk::BulkLoader;
use crate::changelog::{ChangeLog, ChangeRecord, TableChange};
use crate::error::StoreError;
use crate::persist::{self, SNAPSHOT_FILE};
use crate::schema::{ForeignKey, TableSchema};
use crate::table::Table;
use crate::value::{DataType, Value};
use crate::wal::{self, DurabilityPolicy, Wal, WalEntry, WalOp, WAL_FILE};
use crate::Result;

/// The durable half of a [`Database`]: the open WAL plus the directory
/// the snapshot lives in. Present only on databases created through
/// [`Database::open`] / [`Database::recover`].
#[derive(Debug)]
pub(crate) struct Durability {
    pub(crate) wal: Wal,
    pub(crate) dir: PathBuf,
    /// Sticky error after a failed WAL append. A partial frame may be
    /// sitting at the log's tail, so further appends would be misaligned;
    /// durable mutations are refused until [`Database::checkpoint`]
    /// re-syncs log and memory.
    pub(crate) poisoned: Option<StoreError>,
}

impl Durability {
    /// Append one record, flushing before returning. Any failure poisons
    /// the log (see the `poisoned` field) and is sticky until a
    /// checkpoint heals it.
    pub(crate) fn append(&mut self, op: &WalOp<'_>) -> Result<()> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        if let Err(err) = self.wal.append(op) {
            self.poisoned = Some(err.clone());
            return Err(err);
        }
        Ok(())
    }
}

/// An in-memory relational database.
///
/// Tables are kept in a `BTreeMap` so iteration order (and therefore text
/// value numbering downstream in `retro-core`) is deterministic across runs.
///
/// A database is either *ephemeral* ([`Database::new`] — mutations live
/// only in memory) or *durable* ([`Database::open`] /
/// [`Database::recover`] — every committed mutation is appended to a
/// write-ahead log before the call returns, and
/// [`Database::checkpoint`] compacts the log into a checksummed
/// snapshot). See `docs/DURABILITY.md`.
#[derive(Debug, Default)]
pub struct Database {
    pub(crate) tables: BTreeMap<String, Table>,
    /// Monotonic write-version counter; see [`Database::write_version`].
    pub(crate) write_version: u64,
    /// Per-table write versions; see [`Database::table_version`].
    pub(crate) table_versions: BTreeMap<String, u64>,
    /// Bounded history of what each version bump did; see
    /// [`Database::changes_since`].
    pub(crate) change_log: ChangeLog,
    /// WAL + snapshot directory, when this database is durable.
    durability: Option<Durability>,
    /// Diagnostic counter: how many times a delete's RESTRICT check had to
    /// scan a referencing table because its FK column carried no index.
    /// Foreign-key columns are auto-indexed at `create_table`, so this
    /// staying at zero is an invariant the test suite pins.
    fk_scan_fallbacks: AtomicU64,
}

impl Clone for Database {
    /// Cloning copies the in-memory state only: the clone is ephemeral
    /// even when `self` is durable, because two databases appending to
    /// one WAL would interleave their records. (Observers — snapshots for
    /// equivalence tests, the refresh pipeline's working copies — clone
    /// freely and must not write to the original's log.)
    fn clone(&self) -> Self {
        Self {
            tables: self.tables.clone(),
            write_version: self.write_version,
            table_versions: self.table_versions.clone(),
            change_log: self.change_log.clone(),
            durability: None,
            fk_scan_fallbacks: AtomicU64::new(self.fk_scan_fallbacks.load(Ordering::Relaxed)),
        }
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open a durable database rooted at `dir`, creating the directory if
    /// needed. If `dir` already holds a snapshot and/or a write-ahead
    /// log, the persisted state is recovered first — this is an alias for
    /// [`Database::recover`], so "open" and "recover after a crash" are
    /// the same code path and cannot drift apart.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::recover(dir)
    }

    /// Recover the exact pre-crash state persisted under `dir`: load the
    /// latest snapshot (if any), replay the WAL tail through the normal
    /// mutation paths — so [`Database::write_version`], per-table
    /// versions, and [`Database::changes_since`] history are reproduced
    /// exactly, not approximated — and leave the database durable, ready
    /// to append.
    ///
    /// Tail damage in the log (a torn final record, a truncated file, a
    /// bit-flipped checksum) is expected after a crash and recovery stops
    /// cleanly at the last intact record. Structural damage — a corrupt
    /// snapshot, a checksummed record that fails to decode, a sequence
    /// gap — is a typed [`StoreError::Corruption`].
    pub fn recover(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(wal::io_err)?;
        let (mut db, covered_seq) = match persist::load_snapshot(&dir.join(SNAPSHOT_FILE))? {
            Some((db, seq)) => (db, seq),
            None => (Database::default(), 0),
        };
        let wal_path = dir.join(WAL_FILE);
        let replay = wal::read_wal(&wal_path, covered_seq)?;
        for entry in replay.entries {
            // `durability` is still `None` here, so replay does not re-log.
            db.apply(entry).map_err(|err| match err {
                StoreError::Corruption(_) | StoreError::Io(_) => err,
                other => StoreError::Corruption(format!(
                    "wal replay rejected a logged mutation: {other}"
                )),
            })?;
        }
        db.durability = Some(Durability {
            wal: Wal::open(&wal_path, replay.next_seq)?,
            dir: dir.to_path_buf(),
            poisoned: None,
        });
        Ok(db)
    }

    /// True when this database appends committed mutations to a WAL.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Choose when WAL records reach the OS (default
    /// [`DurabilityPolicy::PerCommit`]). Switching flushes any buffered
    /// group first, so records appended under the old policy keep its
    /// guarantee. Requires a durable database.
    pub fn set_durability_policy(&mut self, policy: DurabilityPolicy) -> Result<()> {
        let Some(durability) = &mut self.durability else {
            return Err(StoreError::Io(
                "durability policy requires a durable database (use Database::open)".into(),
            ));
        };
        if let Some(err) = &durability.poisoned {
            return Err(err.clone());
        }
        if let Err(err) = durability.wal.set_policy(policy) {
            durability.poisoned = Some(err.clone());
            return Err(err);
        }
        Ok(())
    }

    /// Flush any group-commit buffer to the OS, making every committed
    /// mutation so far crash-durable. A no-op under
    /// [`DurabilityPolicy::PerCommit`] (appends flush themselves) and on
    /// an ephemeral database.
    pub fn flush_wal(&mut self) -> Result<()> {
        let Some(durability) = &mut self.durability else {
            return Ok(());
        };
        if let Some(err) = &durability.poisoned {
            return Err(err.clone());
        }
        if let Err(err) = durability.wal.flush() {
            durability.poisoned = Some(err.clone());
            return Err(err);
        }
        Ok(())
    }

    /// Crate-internal alias of [`Database::is_durable`] for callers
    /// (the bulk loader) that cannot see the private field.
    pub(crate) fn durability_active(&self) -> bool {
        self.durability.is_some()
    }

    /// Compact the log: write a checksummed snapshot of the full current
    /// state (atomically, via temp file + rename), then truncate the WAL.
    /// Recovery afterwards loads the snapshot and replays only records
    /// appended since. Because the snapshot captures the in-memory truth
    /// directly, a checkpoint also heals a poisoned log (after a failed
    /// append the log may end in a partial frame; snapshotting makes the
    /// log's content irrelevant).
    pub fn checkpoint(&mut self) -> Result<()> {
        let Some(durability) = &self.durability else {
            return Err(StoreError::Io(
                "checkpoint requires a durable database (use Database::open)".into(),
            ));
        };
        let covered_seq = durability.wal.next_seq - 1;
        let path = durability.dir.join(SNAPSHOT_FILE);
        persist::write_snapshot(self, &path, covered_seq)?;
        let durability = self.durability.as_mut().expect("checked above");
        durability.wal.reset()?;
        durability.poisoned = None;
        Ok(())
    }

    /// Write a standalone snapshot of this database under `dir` (created
    /// if needed), without attaching durability to `self`. A later
    /// [`Database::recover`] on `dir` reproduces the current state. Any
    /// stale WAL left in `dir` by an unrelated database is removed —
    /// unless it is this database's own live log (then it is already
    /// consistent: its records are at or below the snapshot's sequence).
    pub fn persist(&self, dir: impl AsRef<Path>) -> Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(wal::io_err)?;
        let covered_seq = self.durability.as_ref().map_or(0, |d| d.wal.next_seq - 1);
        persist::write_snapshot(self, &dir.join(SNAPSHOT_FILE), covered_seq)?;
        if self.durability.as_ref().map_or(true, |d| d.dir != dir) {
            match std::fs::remove_file(dir.join(WAL_FILE)) {
                Ok(()) => {}
                Err(err) if err.kind() == std::io::ErrorKind::NotFound => {}
                Err(err) => return Err(wal::io_err(err)),
            }
        }
        Ok(())
    }

    /// Append one record to the WAL (no-op on an ephemeral database).
    /// Mutation paths call this *before* touching memory, so a failed
    /// append refuses the mutation with state unchanged.
    pub(crate) fn log_op(&mut self, op: WalOp<'_>) -> Result<()> {
        match &mut self.durability {
            Some(durability) => durability.append(&op),
            None => Ok(()),
        }
    }

    /// Re-apply one recovered log entry through the public mutation
    /// paths, so every side effect — validation, version bumps, change
    /// records — happens exactly as it did originally.
    fn apply(&mut self, entry: WalEntry) -> Result<()> {
        match entry {
            WalEntry::CreateTable(schema) => self.create_table(schema),
            WalEntry::Insert { table, row } => self.insert(&table, row).map(|_| ()),
            WalEntry::Batch { tables } => {
                let mut loader = self.bulk();
                let mut handles = Vec::with_capacity(tables.len());
                for (name, _) in &tables {
                    handles.push(loader.table(name)?);
                }
                for (handle, (_, rows)) in handles.into_iter().zip(tables) {
                    for row in rows {
                        loader.stage(handle, row)?;
                    }
                }
                loader.commit().map(|_| ())
            }
            WalEntry::Update { table, updates } => self.update_rows(&table, &updates).map(|_| ()),
            WalEntry::Delete { table, positions } => {
                self.delete_rows(&table, &positions).map(|_| ())
            }
            WalEntry::TableState { table, rows } => {
                // `table_mut` records the same `Unknown` change the
                // original edit session did; the guard then replaces the
                // contents wholesale.
                self.table_mut(&table)?.set_rows(rows);
                Ok(())
            }
            WalEntry::CreateIndex { table, column } => {
                self.create_index(&table, &column).map(|_| ())
            }
        }
    }

    /// The database's monotonic write version.
    ///
    /// Every mutating operation — [`Database::create_table`],
    /// [`Database::insert`] and its batch variants, a committed
    /// [`Database::bulk`] load (CSV import and SQL `INSERT` route through
    /// it), [`Database::update_rows`] / [`Database::delete_rows`] (SQL
    /// `UPDATE`/`DELETE` that touched rows route through them), and any
    /// [`Database::table_mut`] access — bumps this counter, so an observer
    /// that remembers the version it last saw can detect "something
    /// changed" with one integer compare. A rolled-back bulk batch leaves
    /// the version (like the data) untouched. The counter is a *staleness
    /// signal*, not an exact mutation count: a path may bump it more than
    /// once per logical write, and a bump does not guarantee the data
    /// differs — only equality is meaningful, and only as "no write
    /// happened in between". Each bump also stamps the mutated table's
    /// [`Database::table_version`] and appends a [`ChangeRecord`]
    /// describing the mutation to the bounded log behind
    /// [`Database::changes_since`].
    ///
    /// `retro_core::serve::EmbeddingService` polls this through
    /// [`crate::SharedDatabase::write_version`] to decide when a published
    /// embedding snapshot is out of date.
    pub fn write_version(&self) -> u64 {
        self.write_version
    }

    /// The write version of the last mutation that touched `name`, or 0 if
    /// the table has never been mutated (or does not exist).
    ///
    /// Together with [`Database::changes_since`] this lets an observer
    /// scope reactions to the tables that actually changed instead of
    /// re-reading the whole database on every global version bump.
    pub fn table_version(&self, name: &str) -> u64 {
        self.table_versions.get(name).copied().unwrap_or(0)
    }

    /// Every change recorded after write version `since`, oldest first, or
    /// `None` when the bounded change log has evicted history past `since`
    /// — the caller must then assume anything changed (in `retro-core`
    /// that triggers the full-refresh fallback). See [`crate::changelog`].
    pub fn changes_since(&self, since: u64) -> Option<Vec<&ChangeRecord>> {
        self.change_log.changes_since(since)
    }

    /// Change how many [`ChangeRecord`]s the bounded log retains (min 1).
    /// Shrinking evicts the oldest records immediately.
    pub fn set_change_log_capacity(&mut self, capacity: usize) {
        self.change_log.set_capacity(capacity);
    }

    /// Record a mutation: bump [`Database::write_version`], stamp the
    /// table's [`Database::table_version`], and append a [`ChangeRecord`]
    /// to the bounded log. Every mutating path routes through here so the
    /// three signals cannot drift.
    pub(crate) fn record_change(&mut self, table: &str, change: TableChange) {
        self.write_version += 1;
        self.table_versions.insert(table.to_owned(), self.write_version);
        self.change_log.push(ChangeRecord {
            version: self.write_version,
            table: table.to_owned(),
            change,
        });
    }

    /// Create a table from a schema, validating foreign-key declarations
    /// against the already-present tables.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<()> {
        if self.tables.contains_key(&schema.name) {
            return Err(StoreError::DuplicateTable(schema.name));
        }
        for fk in &schema.foreign_keys {
            if schema.column_index(&fk.column).is_none() {
                return Err(StoreError::BadForeignKey(format!(
                    "column `{}` not in table `{}`",
                    fk.column, schema.name
                )));
            }
            let target = self.tables.get(&fk.ref_table).ok_or_else(|| {
                StoreError::BadForeignKey(format!(
                    "referenced table `{}` does not exist",
                    fk.ref_table
                ))
            })?;
            let ref_schema = target.schema();
            let ref_idx = ref_schema.column_index(&fk.ref_column).ok_or_else(|| {
                StoreError::BadForeignKey(format!(
                    "referenced column `{}.{}` does not exist",
                    fk.ref_table, fk.ref_column
                ))
            })?;
            if ref_schema.primary_key != Some(ref_idx) {
                return Err(StoreError::BadForeignKey(format!(
                    "`{}.{}` is not the primary key of `{}`",
                    fk.ref_table, fk.ref_column, fk.ref_table
                )));
            }
            let col = schema.column(&fk.column).expect("checked above");
            if col.ty != DataType::Int {
                return Err(StoreError::BadForeignKey(format!(
                    "foreign key column `{}.{}` must be INTEGER",
                    schema.name, fk.column
                )));
            }
        }
        self.log_op(WalOp::CreateTable(&schema))?;
        let name = schema.name.clone();
        let fk_cols: Vec<usize> = schema
            .foreign_keys
            .iter()
            .map(|fk| schema.column_index(&fk.column).expect("checked above"))
            .collect();
        let mut table = Table::new(schema);
        // Auto-index every foreign-key column: FK validation on delete and
        // the extraction/planner join paths all probe these. The indexes
        // are derived from the schema, so WAL replay of the CreateTable
        // record above re-creates them without any extra log record.
        for col in fk_cols {
            table.create_secondary_index(col).expect("fk columns are INTEGER");
        }
        self.tables.insert(name.clone(), table);
        self.record_change(&name, TableChange::Created);
        Ok(())
    }

    /// Declare a secondary equality index on `table.column`, backfilling
    /// it from the existing rows. Supported on `INTEGER` and `TEXT`
    /// columns; foreign-key columns are indexed automatically at
    /// [`Database::create_table`]. Returns `false` when the column was
    /// already indexed (the call is then a no-op, and nothing is logged).
    ///
    /// On a durable database the declaration is WAL-logged and recorded in
    /// snapshots, so recovery rebuilds the same index set. Declaring an
    /// index does not bump [`Database::write_version`]: it changes no
    /// query result, only access paths.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<bool> {
        let t = self.tables.get(table).ok_or_else(|| StoreError::UnknownTable(table.to_owned()))?;
        let col = t.schema().column_index(column).ok_or_else(|| StoreError::UnknownColumn {
            table: table.to_owned(),
            column: column.to_owned(),
        })?;
        // Type-gate before logging: a logged declaration must replay.
        t.indexable_key_type(col)?;
        if t.has_secondary_index(col) {
            return Ok(false);
        }
        self.log_op(WalOp::CreateIndex { table, column })?;
        let created = self
            .tables
            .get_mut(table)
            .expect("checked above")
            .create_secondary_index(col)
            .expect("validated above");
        debug_assert!(created);
        Ok(true)
    }

    /// How many times a [`Database::delete_rows`] RESTRICT check fell back
    /// to scanning a referencing table because its foreign-key column had
    /// no index. Foreign-key columns are auto-indexed at table creation,
    /// so this stays 0 in normal operation — the test suite asserts it.
    pub fn fk_scan_fallbacks(&self) -> u64 {
        self.fk_scan_fallbacks.load(Ordering::Relaxed)
    }

    /// Insert a row, enforcing arity, types, key uniqueness and foreign keys.
    /// Returns the row's position in the table.
    pub fn insert(&mut self, table: &str, row: Vec<Value>) -> Result<usize> {
        let t = self.tables.get(table).ok_or_else(|| StoreError::UnknownTable(table.to_owned()))?;
        t.validate_row(&row)?;
        // Foreign keys need read access to other tables, so check them
        // before taking the mutable borrow. NULL FK values are allowed (the
        // relation is simply absent), matching SQL semantics.
        for fk in &t.schema().foreign_keys {
            let idx = t.schema().column_index(&fk.column).expect("validated at create");
            match &row[idx] {
                Value::Null => {}
                Value::Int(k) => {
                    let target = self.tables.get(&fk.ref_table).expect("validated at create");
                    if !target.contains_pk(*k) {
                        return Err(StoreError::ForeignKeyViolation {
                            table: table.to_owned(),
                            column: fk.column.clone(),
                            value: k.to_string(),
                        });
                    }
                }
                other => {
                    return Err(StoreError::TypeMismatch {
                        table: table.to_owned(),
                        column: fk.column.clone(),
                        expected: "INTEGER".to_owned(),
                        got: other.data_type().map_or_else(|| "NULL".into(), |ty| ty.to_string()),
                    })
                }
            }
        }
        self.log_op(WalOp::Insert { table, row: &row })?;
        let t = self.tables.get_mut(table).expect("checked above");
        let pos = t.push_unchecked(row);
        self.record_change(table, TableChange::Appended { start: pos, rows: 1 });
        Ok(pos)
    }

    /// Start a batched bulk load into this database.
    ///
    /// The returned [`BulkLoader`] stages rows across any number of tables,
    /// defers all validation to a single [`commit`](BulkLoader::commit), and
    /// either appends every staged row or (on the first constraint
    /// violation, in staging order) leaves the database untouched. All
    /// per-row name resolution — table lookups, foreign-key column indices,
    /// referenced-table handles — is amortized to once per batch, which is
    /// what makes this the ingest fast path. See `docs/INGESTION.md`.
    pub fn bulk(&mut self) -> BulkLoader<'_> {
        BulkLoader::new(self)
    }

    /// Atomically insert a batch of rows into one table via the bulk path.
    ///
    /// Either every row is inserted or none are; the error identifies the
    /// offending row as [`StoreError::BulkRow`]. The resulting database
    /// state is identical to calling [`Database::insert`] per row.
    ///
    /// ```
    /// use retro_store::{Database, DataType, TableSchema, Value};
    ///
    /// let mut db = Database::new();
    /// db.create_table(TableSchema::builder("t").pk("id").build()).unwrap();
    /// let n = db
    ///     .insert_batch("t", (1..=3).map(|k| vec![Value::Int(k)]))
    ///     .unwrap();
    /// assert_eq!(n, 3);
    /// ```
    pub fn insert_batch(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<usize> {
        let mut loader = self.bulk();
        let handle = loader.table(table)?;
        for row in rows {
            loader.stage(handle, row)?;
        }
        loader.commit()
    }

    /// Bulk insert into one table — an alias for [`Database::insert_batch`].
    ///
    /// The whole batch is **atomic**: a bad row anywhere leaves the table
    /// exactly as it was (before PR 3 this method inserted rows until the
    /// first error, stranding a partial prefix).
    ///
    /// ```
    /// use retro_store::{Database, DataType, StoreError, TableSchema, Value};
    ///
    /// let mut db = Database::new();
    /// db.create_table(TableSchema::builder("t").pk("id").build()).unwrap();
    /// // The second row repeats primary key 1: nothing at all is inserted.
    /// let err = db
    ///     .insert_many("t", vec![vec![Value::Int(1)], vec![Value::Int(1)]])
    ///     .unwrap_err();
    /// assert!(matches!(err, StoreError::BulkRow { row: 1, .. }));
    /// assert!(db.table("t").unwrap().is_empty());
    /// ```
    pub fn insert_many(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<usize> {
        self.insert_batch(table, rows)
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables.get(name).ok_or_else(|| StoreError::UnknownTable(name.to_owned()))
    }

    /// Look up a table mutably — the **assume-write escape hatch**, not the
    /// everyday API.
    ///
    /// The caller gets unchecked mutable access, so this conservatively
    /// records a [`TableChange::Unknown`] (bumping
    /// [`Database::write_version`]) whether or not a write follows: the
    /// version counter must never miss a mutation, and an `Unknown` record
    /// correctly forces observers maintaining derived state onto their
    /// full-rebuild path. That conservatism is exactly why **read-only
    /// callers must use [`Database::table`] instead** — routing a read
    /// through here invalidates every derived observer for nothing (at
    /// serving scale, one spurious bump costs a full multi-second re-solve
    /// where a real small write would have cost milliseconds). Callers that
    /// want their writes tracked precisely should use
    /// [`Database::update_rows`] / [`Database::delete_rows`], which record
    /// what actually changed; nothing inside this crate calls `table_mut`
    /// anymore.
    ///
    /// The returned [`TableGuard`] dereferences to the table. On a
    /// durable database, dropping the guard logs the table's complete
    /// post-edit row state to the WAL (the engine cannot see what the
    /// borrower did, so it persists the result wholesale — the durable
    /// mirror of the `Unknown` change record). On a poisoned log the
    /// hand-out itself is refused, so no edit can go unlogged.
    pub fn table_mut(&mut self, name: &str) -> Result<TableGuard<'_>> {
        if !self.tables.contains_key(name) {
            return Err(StoreError::UnknownTable(name.to_owned()));
        }
        if let Some(err) = self.durability.as_ref().and_then(|d| d.poisoned.clone()) {
            return Err(err);
        }
        self.record_change(name, TableChange::Unknown);
        Ok(TableGuard { name: name.to_owned(), db: self })
    }

    /// Rewrite individual cells in place, atomically and precisely tracked.
    ///
    /// `updates` lists `(row position, column index, new value)` triples.
    /// Every triple is validated first — row/column bounds, column type,
    /// the primary-key column is frozen, and a foreign-key column may only
    /// receive `NULL` or a key present in the referenced table — and only
    /// then are all of them applied, so a bad triple anywhere leaves the
    /// table (and the write version) untouched. On success one
    /// [`TableChange::Updated`] record is logged; its `relational` flag is
    /// set only when a TEXT or foreign-key column was assigned, which lets
    /// observers ignore updates that cannot affect the text-value graph.
    pub fn update_rows(&mut self, table: &str, updates: &[(usize, usize, Value)]) -> Result<usize> {
        let t = self.tables.get(table).ok_or_else(|| StoreError::UnknownTable(table.to_owned()))?;
        let schema = t.schema();
        let mut relational = false;
        for &(row, col, ref value) in updates {
            if row >= t.len() || col >= schema.columns.len() {
                return Err(StoreError::UnknownColumn {
                    table: table.to_owned(),
                    column: format!("index {col}"),
                });
            }
            if Some(col) == schema.primary_key {
                return Err(StoreError::Sql("cannot update a primary key column".into()));
            }
            let def = &schema.columns[col];
            if !value.fits(def.ty) {
                return Err(StoreError::TypeMismatch {
                    table: table.to_owned(),
                    column: def.name.clone(),
                    expected: def.ty.to_string(),
                    got: value.data_type().map_or_else(|| "NULL".into(), |ty| ty.to_string()),
                });
            }
            if let Some(fk) =
                schema.foreign_keys.iter().find(|fk| schema.column_index(&fk.column) == Some(col))
            {
                match value {
                    Value::Null => {}
                    Value::Int(k) => {
                        let target =
                            self.tables.get(&fk.ref_table).expect("fk validated at create");
                        if !target.contains_pk(*k) {
                            return Err(StoreError::ForeignKeyViolation {
                                table: table.to_owned(),
                                column: fk.column.clone(),
                                value: k.to_string(),
                            });
                        }
                    }
                    _ => unreachable!("fk columns are INTEGER; fits() checked above"),
                }
                relational = true;
            }
            if def.ty == DataType::Text {
                relational = true;
            }
        }
        if updates.is_empty() {
            return Ok(0);
        }
        self.log_op(WalOp::Update { table, updates })?;
        let t = self.tables.get_mut(table).expect("checked above");
        let mut rows: Vec<usize> = Vec::with_capacity(updates.len());
        for (row, col, value) in updates {
            t.update_cell(*row, *col, value.clone()).expect("validated above");
            rows.push(*row);
        }
        rows.sort_unstable();
        rows.dedup();
        let n = rows.len();
        self.record_change(table, TableChange::Updated { rows: n, relational });
        Ok(n)
    }

    /// Remove the rows at the given positions, enforcing referential
    /// integrity (RESTRICT: no other table may still reference a primary
    /// key that is about to disappear), and record a precise
    /// [`TableChange::Deleted`]. Positions may arrive in any order; out-of-
    /// range positions are ignored. Returns the number of rows removed; a
    /// call that removes nothing leaves the write version untouched.
    pub fn delete_rows(&mut self, table: &str, positions: &[usize]) -> Result<usize> {
        let t = self.tables.get(table).ok_or_else(|| StoreError::UnknownTable(table.to_owned()))?;
        let mut sorted: Vec<usize> = positions.iter().copied().filter(|&p| p < t.len()).collect();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.is_empty() {
            return Ok(0);
        }
        if let Some(pk) = t.schema().primary_key {
            for other in self.tables.values() {
                for fk in &other.schema().foreign_keys {
                    if fk.ref_table != table {
                        continue;
                    }
                    let col =
                        other.schema().column_index(&fk.column).expect("fk validated at create");
                    if other.has_secondary_index(col) {
                        // O(doomed) index probes instead of an O(table)
                        // scan: the FK column is auto-indexed, so each
                        // doomed key answers "still referenced?" in one
                        // hash lookup.
                        for &pos in &sorted {
                            if let Some(k) = t.rows()[pos][pk].as_int() {
                                if other.index_probe_int(col, k).is_some_and(|l| !l.is_empty()) {
                                    return Err(StoreError::ForeignKeyViolation {
                                        table: other.name().to_owned(),
                                        column: fk.column.clone(),
                                        value: k.to_string(),
                                    });
                                }
                            }
                        }
                    } else {
                        self.fk_scan_fallbacks.fetch_add(1, Ordering::Relaxed);
                        let doomed: std::collections::HashSet<i64> =
                            sorted.iter().filter_map(|&pos| t.rows()[pos][pk].as_int()).collect();
                        for value in other.column_values(col) {
                            if let Some(k) = value.as_int() {
                                if doomed.contains(&k) {
                                    return Err(StoreError::ForeignKeyViolation {
                                        table: other.name().to_owned(),
                                        column: fk.column.clone(),
                                        value: k.to_string(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
        }
        self.log_op(WalOp::Delete { table, positions: &sorted })?;
        let n = sorted.len();
        self.tables.get_mut(table).expect("checked above").remove_rows(&sorted);
        self.record_change(table, TableChange::Deleted { rows: n });
        Ok(n)
    }

    /// True when the table exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Deterministic iteration over all tables.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }

    /// Table names in deterministic order.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Number of tables that are pure n:m link tables (the parenthesized
    /// count in the paper's Table 1).
    pub fn link_table_count(&self) -> usize {
        self.tables.values().filter(|t| t.schema().is_link_table()).count()
    }

    /// All `(table, foreign-key)` pairs in deterministic order — the raw
    /// material of relationship extraction.
    pub fn all_foreign_keys(&self) -> Vec<(&str, &ForeignKey)> {
        self.tables
            .values()
            .flat_map(|t| t.schema().foreign_keys.iter().map(move |fk| (t.name(), fk)))
            .collect()
    }

    /// Count of distinct `(table, column, text)` values — i.e. the number of
    /// embeddings RETRO will learn before the §3.3 uniqueness rules merge
    /// duplicates within a column. Used for Table 1 reporting.
    pub fn unique_text_value_count(&self) -> usize {
        use std::collections::HashSet;
        let mut seen: HashSet<(usize, usize, &str)> = HashSet::new();
        for (ti, t) in self.tables.values().enumerate() {
            for ci in t.schema().text_columns() {
                for v in t.column_values(ci) {
                    if let Some(s) = v.as_text() {
                        seen.insert((ti, ci, s));
                    }
                }
            }
        }
        seen.len()
    }
}

/// Mutable access to one table, handed out by [`Database::table_mut`].
///
/// Dereferences to [`Table`]. The guard exists so a durable database can
/// log the edit session's outcome: on drop, the table's complete row
/// state is appended to the WAL as one record. The guard holds the
/// database borrow for its whole lifetime, so no other mutation can
/// interleave between hand-out and the logged state.
pub struct TableGuard<'db> {
    db: &'db mut Database,
    name: String,
}

impl std::ops::Deref for TableGuard<'_> {
    type Target = Table;

    fn deref(&self) -> &Table {
        self.db.tables.get(&self.name).expect("existence checked at hand-out")
    }
}

impl std::ops::DerefMut for TableGuard<'_> {
    fn deref_mut(&mut self) -> &mut Table {
        self.db.tables.get_mut(&self.name).expect("existence checked at hand-out")
    }
}

impl Drop for TableGuard<'_> {
    fn drop(&mut self) {
        let db = &mut *self.db;
        if let Some(durability) = db.durability.as_mut() {
            let table = db.tables.get(&self.name).expect("existence checked at hand-out");
            // A failed append cannot be reported from a destructor;
            // `Durability::append` poisons the log, and the next durable
            // mutation (or `table_mut` hand-out) surfaces the error.
            let _ = durability.append(&WalOp::TableState { table: &self.name, rows: table.rows() });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::builder("persons").pk("id").column("name", DataType::Text).build(),
        )
        .unwrap();
        db.create_table(
            TableSchema::builder("movies")
                .pk("id")
                .column("title", DataType::Text)
                .fk("director_id", "persons", "id")
                .build(),
        )
        .unwrap();
        db
    }

    #[test]
    fn create_and_insert_with_fk() {
        let mut d = db();
        d.insert("persons", vec![Value::Int(1), Value::from("Luc Besson")]).unwrap();
        d.insert("movies", vec![Value::Int(10), Value::from("5th Element"), Value::Int(1)])
            .unwrap();
        assert_eq!(d.table("movies").unwrap().len(), 1);
    }

    #[test]
    fn fk_violation_rejected() {
        let mut d = db();
        let err = d
            .insert("movies", vec![Value::Int(10), Value::from("Alien"), Value::Int(99)])
            .unwrap_err();
        assert!(matches!(err, StoreError::ForeignKeyViolation { .. }));
    }

    #[test]
    fn null_fk_allowed() {
        let mut d = db();
        d.insert("movies", vec![Value::Int(10), Value::from("Alien"), Value::Null]).unwrap();
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut d = db();
        let err = d.create_table(TableSchema::builder("movies").pk("id").build()).unwrap_err();
        assert_eq!(err, StoreError::DuplicateTable("movies".into()));
    }

    #[test]
    fn fk_must_reference_existing_pk() {
        let mut d = Database::new();
        let err = d
            .create_table(TableSchema::builder("a").pk("id").fk("b_id", "b", "id").build())
            .unwrap_err();
        assert!(matches!(err, StoreError::BadForeignKey(_)));
    }

    #[test]
    fn unknown_table_errors() {
        let d = db();
        assert!(d.table("nope").is_err());
        let mut d = d;
        assert!(d.insert("nope", vec![]).is_err());
    }

    #[test]
    fn unique_text_values_counted_per_column() {
        let mut d = db();
        d.insert("persons", vec![Value::Int(1), Value::from("Amelie")]).unwrap();
        d.insert("persons", vec![Value::Int(2), Value::from("Amelie")]).unwrap(); // same column → 1
        d.insert("movies", vec![Value::Int(1), Value::from("Amelie"), Value::Int(1)]).unwrap(); // other column → +1
        assert_eq!(d.unique_text_value_count(), 2);
    }

    #[test]
    fn counts_and_introspection() {
        let mut d = db();
        d.create_table(
            TableSchema::builder("genres").pk("id").column("name", DataType::Text).build(),
        )
        .unwrap();
        d.create_table(
            TableSchema::builder("movie_genre")
                .fk("movie_id", "movies", "id")
                .fk("genre_id", "genres", "id")
                .build(),
        )
        .unwrap();
        assert_eq!(d.table_count(), 4);
        assert_eq!(d.link_table_count(), 1);
        assert_eq!(d.all_foreign_keys().len(), 3);
        assert_eq!(d.table_names(), vec!["genres", "movie_genre", "movies", "persons"]);
    }

    #[test]
    fn write_version_tracks_mutations() {
        let mut d = Database::new();
        assert_eq!(d.write_version(), 0);
        d.create_table(
            TableSchema::builder("persons").pk("id").column("name", DataType::Text).build(),
        )
        .unwrap();
        let after_ddl = d.write_version();
        assert!(after_ddl > 0, "CREATE TABLE must bump the write version");

        d.insert("persons", vec![Value::Int(1), Value::from("a")]).unwrap();
        let after_insert = d.write_version();
        assert!(after_insert > after_ddl, "insert must bump the write version");

        // A failed insert leaves the version unchanged.
        assert!(d.insert("persons", vec![Value::Int(1), Value::from("dup")]).is_err());
        assert_eq!(d.write_version(), after_insert);

        // A committed batch bumps; reads do not.
        d.insert_batch("persons", (2..=4).map(|k| vec![Value::Int(k), Value::from("x")])).unwrap();
        let after_batch = d.write_version();
        assert!(after_batch > after_insert);
        let _ = d.table("persons").unwrap().len();
        let _ = d.table_names();
        assert_eq!(d.write_version(), after_batch);
    }

    #[test]
    fn rolled_back_bulk_leaves_write_version_untouched() {
        let mut d = db();
        let before = d.write_version();
        let rows = vec![
            vec![Value::Int(1), Value::from("a")],
            vec![Value::Int(1), Value::from("dup")], // duplicate key → rollback
        ];
        assert!(d.insert_many("persons", rows).is_err());
        assert_eq!(d.write_version(), before, "a rolled-back batch is not a write");

        // An aborted (dropped, uncommitted) loader is not a write either.
        let mut loader = d.bulk();
        let persons = loader.table("persons").unwrap();
        loader.stage(persons, vec![Value::Int(9), Value::from("ghost")]).unwrap();
        drop(loader);
        assert_eq!(d.write_version(), before);
    }

    #[test]
    fn sql_dml_bumps_write_version() {
        use crate::sql;
        let mut d = Database::new();
        sql::run_script(
            &mut d,
            "CREATE TABLE t (id INTEGER PRIMARY KEY, name TEXT);
             INSERT INTO t VALUES (1, 'a'), (2, 'b');",
        )
        .unwrap();
        let v0 = d.write_version();

        sql::run(&mut d, "UPDATE t SET name = 'z' WHERE id = 1").unwrap();
        let v1 = d.write_version();
        assert!(v1 > v0, "UPDATE must bump the write version");

        // An UPDATE matching nothing changes nothing.
        sql::run(&mut d, "UPDATE t SET name = 'q' WHERE id = 99").unwrap();
        assert_eq!(d.write_version(), v1);

        sql::run(&mut d, "DELETE FROM t WHERE id = 2").unwrap();
        let v2 = d.write_version();
        assert!(v2 > v1, "DELETE must bump the write version");

        // A DELETE matching nothing changes nothing; SELECT never does.
        sql::run(&mut d, "DELETE FROM t WHERE id = 99").unwrap();
        sql::run(&mut d, "SELECT * FROM t").unwrap();
        assert_eq!(d.write_version(), v2);
    }

    #[test]
    fn change_log_records_precise_mutations() {
        use crate::changelog::TableChange;
        let mut d = db();
        let v0 = d.write_version();
        d.insert("persons", vec![Value::Int(1), Value::from("a")]).unwrap();
        d.insert_batch("persons", (2..=4).map(|k| vec![Value::Int(k), Value::from("x")])).unwrap();
        let changes = d.changes_since(v0).unwrap();
        assert_eq!(changes.len(), 2);
        assert_eq!(changes[0].table, "persons");
        assert_eq!(changes[0].change, TableChange::Appended { start: 0, rows: 1 });
        assert_eq!(changes[1].change, TableChange::Appended { start: 1, rows: 3 });
        assert_eq!(changes[1].version, d.write_version());

        // A rolled-back batch records nothing.
        let v1 = d.write_version();
        let _ = d.insert_many(
            "persons",
            vec![vec![Value::Int(9), Value::from("y")], vec![Value::Int(9), Value::from("dup")]],
        );
        assert!(d.changes_since(v1).unwrap().is_empty());
    }

    #[test]
    fn per_table_versions_track_only_the_mutated_table() {
        let mut d = db();
        assert!(d.table_version("persons") > 0, "create_table stamps the table version");
        let persons_v = d.table_version("persons");
        let movies_v = d.table_version("movies");
        d.insert("persons", vec![Value::Int(1), Value::from("a")]).unwrap();
        assert!(d.table_version("persons") > persons_v);
        assert_eq!(d.table_version("movies"), movies_v, "untouched table keeps its version");
        assert_eq!(d.table_version("persons"), d.write_version());
        assert_eq!(d.table_version("nope"), 0);
    }

    #[test]
    fn change_log_overflow_reports_truncation() {
        let mut d = db();
        d.set_change_log_capacity(2);
        let v0 = d.write_version();
        for k in 1..=5 {
            d.insert("persons", vec![Value::Int(k), Value::from("p")]).unwrap();
        }
        assert_eq!(d.changes_since(v0), None, "evicted history must be reported as truncated");
        assert_eq!(d.changes_since(d.write_version() - 2).unwrap().len(), 2);
    }

    #[test]
    fn table_mut_records_unknown_change() {
        use crate::changelog::TableChange;
        let mut d = db();
        let v0 = d.write_version();
        let _ = d.table_mut("persons").unwrap();
        let changes = d.changes_since(v0).unwrap();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].change, TableChange::Unknown);
        // A failed lookup bumps nothing.
        let v1 = d.write_version();
        assert!(d.table_mut("nope").is_err());
        assert_eq!(d.write_version(), v1);
    }

    #[test]
    fn update_rows_validates_before_applying() {
        use crate::changelog::TableChange;
        let mut d = db();
        d.insert("persons", vec![Value::Int(1), Value::from("a")]).unwrap();
        d.insert("persons", vec![Value::Int(2), Value::from("b")]).unwrap();
        let v0 = d.write_version();

        // A bad triple anywhere applies nothing and bumps nothing.
        let err = d
            .update_rows("persons", &[(0, 1, Value::from("z")), (1, 1, Value::Int(7))])
            .unwrap_err();
        assert!(matches!(err, StoreError::TypeMismatch { .. }));
        assert_eq!(d.write_version(), v0);
        assert_eq!(d.table("persons").unwrap().rows()[0][1], Value::from("a"));

        // A good batch applies atomically with one precise record.
        let n = d.update_rows("persons", &[(0, 1, Value::from("z")), (1, 1, Value::from("y"))]);
        assert_eq!(n.unwrap(), 2);
        let changes = d.changes_since(v0).unwrap();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].change, TableChange::Updated { rows: 2, relational: true });

        // The primary key stays frozen; empty updates are free.
        assert!(d.update_rows("persons", &[(0, 0, Value::Int(9))]).is_err());
        let v1 = d.write_version();
        assert_eq!(d.update_rows("persons", &[]).unwrap(), 0);
        assert_eq!(d.write_version(), v1);
    }

    #[test]
    fn update_rows_flags_non_text_updates_as_non_relational() {
        use crate::changelog::TableChange;
        let mut d = Database::new();
        d.create_table(
            TableSchema::builder("t")
                .pk("id")
                .column("name", DataType::Text)
                .column("score", DataType::Float)
                .build(),
        )
        .unwrap();
        d.insert("t", vec![Value::Int(1), Value::from("a"), Value::Float(0.0)]).unwrap();
        let v0 = d.write_version();
        d.update_rows("t", &[(0, 2, Value::Float(1.5))]).unwrap();
        let changes = d.changes_since(v0).unwrap();
        assert_eq!(changes[0].change, TableChange::Updated { rows: 1, relational: false });
    }

    #[test]
    fn update_rows_checks_foreign_keys() {
        let mut d = db();
        d.insert("persons", vec![Value::Int(1), Value::from("a")]).unwrap();
        d.insert("movies", vec![Value::Int(10), Value::from("m"), Value::Int(1)]).unwrap();
        // Dangling key rejected, NULL and valid keys allowed.
        let err = d.update_rows("movies", &[(0, 2, Value::Int(99))]).unwrap_err();
        assert!(matches!(err, StoreError::ForeignKeyViolation { .. }));
        d.update_rows("movies", &[(0, 2, Value::Null)]).unwrap();
        d.update_rows("movies", &[(0, 2, Value::Int(1))]).unwrap();
    }

    #[test]
    fn delete_rows_enforces_restrict_and_records() {
        use crate::changelog::TableChange;
        let mut d = db();
        d.insert("persons", vec![Value::Int(1), Value::from("a")]).unwrap();
        d.insert("persons", vec![Value::Int(2), Value::from("b")]).unwrap();
        d.insert("movies", vec![Value::Int(10), Value::from("m"), Value::Int(1)]).unwrap();

        // Person 1 is referenced: RESTRICT.
        let v0 = d.write_version();
        let err = d.delete_rows("persons", &[0]).unwrap_err();
        assert!(matches!(err, StoreError::ForeignKeyViolation { .. }));
        assert_eq!(d.write_version(), v0);

        // Person 2 is free; duplicate/out-of-range positions are tolerated.
        assert_eq!(d.delete_rows("persons", &[1, 1, 99]).unwrap(), 1);
        let changes = d.changes_since(v0).unwrap();
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].change, TableChange::Deleted { rows: 1 });
        assert!(!d.table("persons").unwrap().contains_pk(2));

        // Deleting nothing bumps nothing.
        let v1 = d.write_version();
        assert_eq!(d.delete_rows("persons", &[99]).unwrap(), 0);
        assert_eq!(d.write_version(), v1);
    }

    #[test]
    fn insert_many_is_atomic() {
        let mut d = db();
        let rows = vec![
            vec![Value::Int(1), Value::from("a")],
            vec![Value::Int(1), Value::from("b")], // duplicate key
        ];
        assert!(d.insert_many("persons", rows).is_err());
        assert_eq!(d.table("persons").unwrap().len(), 0, "bad batch must insert nothing");

        let rows =
            vec![vec![Value::Int(1), Value::from("a")], vec![Value::Int(2), Value::from("b")]];
        assert_eq!(d.insert_many("persons", rows).unwrap(), 2);
        assert_eq!(d.table("persons").unwrap().len(), 2);
    }

    #[test]
    fn fk_columns_are_auto_indexed() {
        let d = db();
        let movies = d.table("movies").unwrap();
        let fk_col = movies.schema().column_index("director_id").unwrap();
        assert!(movies.has_secondary_index(fk_col));
        assert_eq!(movies.secondary_index_columns(), vec![fk_col]);
        // The non-FK text column is not.
        let title = movies.schema().column_index("title").unwrap();
        assert!(!movies.has_secondary_index(title));
    }

    #[test]
    fn create_index_validates_and_is_idempotent() {
        let mut d = db();
        d.create_table(
            TableSchema::builder("scores").pk("id").column("score", DataType::Float).build(),
        )
        .unwrap();
        d.insert("persons", vec![Value::Int(1), Value::from("Amelie")]).unwrap();

        // Declared index backfills from existing rows.
        assert!(d.create_index("persons", "name").unwrap());
        let persons = d.table("persons").unwrap();
        let name = persons.schema().column_index("name").unwrap();
        assert_eq!(persons.index_probe_text(name, "Amelie"), Some(&[0u32][..]));

        // Re-declaring is a no-op, not an error.
        assert!(!d.create_index("persons", "name").unwrap());
        // FK columns are already indexed at create_table.
        assert!(!d.create_index("movies", "director_id").unwrap());

        // Floats cannot carry equality indexes; bad names are typed errors.
        assert!(matches!(d.create_index("scores", "score").unwrap_err(), StoreError::Sql(_)));
        assert!(matches!(d.create_index("nope", "x").unwrap_err(), StoreError::UnknownTable(_)));
        assert!(matches!(
            d.create_index("persons", "nope").unwrap_err(),
            StoreError::UnknownColumn { .. }
        ));
    }

    #[test]
    fn restrict_check_uses_fk_index_not_scans() {
        let mut d = db();
        d.insert("persons", vec![Value::Int(1), Value::from("a")]).unwrap();
        d.insert("persons", vec![Value::Int(2), Value::from("b")]).unwrap();
        d.insert("movies", vec![Value::Int(10), Value::from("m"), Value::Int(1)]).unwrap();
        assert!(d.delete_rows("persons", &[0]).is_err());
        assert_eq!(d.delete_rows("persons", &[1]).unwrap(), 1);
        assert_eq!(d.fk_scan_fallbacks(), 0, "RESTRICT checks must probe the FK index");
    }

    #[test]
    fn group_commit_recovers_equivalent_to_per_commit() {
        use std::time::Duration;
        let base =
            std::env::temp_dir().join(format!("retro_db_group_commit_{}", std::process::id()));
        let per = base.join("per");
        let group = base.join("group");
        let _ = std::fs::remove_dir_all(&base);

        let script = |d: &mut Database| {
            d.create_table(
                TableSchema::builder("persons").pk("id").column("name", DataType::Text).build(),
            )
            .unwrap();
            for k in 1..=10 {
                d.insert("persons", vec![Value::Int(k), Value::from(format!("p{k}"))]).unwrap();
            }
            d.update_rows("persons", &[(0, 1, Value::from("z"))]).unwrap();
            d.delete_rows("persons", &[9]).unwrap();
        };

        let mut a = Database::open(&per).unwrap();
        script(&mut a);

        let mut b = Database::open(&group).unwrap();
        b.set_durability_policy(DurabilityPolicy::Group(1024, Duration::from_secs(3600))).unwrap();
        script(&mut b);

        // The group never filled and the delay is huge, so the on-disk log
        // lags the PerCommit twin until an explicit flush...
        let per_bytes = std::fs::read(per.join(WAL_FILE)).unwrap();
        assert!(std::fs::read(group.join(WAL_FILE)).unwrap().len() < per_bytes.len());
        b.flush_wal().unwrap();
        // ...after which the two logs are byte-identical: same frames, same
        // checksums, same sequence numbers.
        assert_eq!(std::fs::read(group.join(WAL_FILE)).unwrap(), per_bytes);

        drop(a);
        drop(b);
        let ra = Database::recover(&per).unwrap();
        let rb = Database::recover(&group).unwrap();
        assert_eq!(ra.write_version(), rb.write_version());
        assert_eq!(ra.table_names(), rb.table_names());
        for name in ra.table_names() {
            assert_eq!(ra.table(name).unwrap().rows(), rb.table(name).unwrap().rows());
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn group_commit_flushes_on_count_and_on_drop() {
        use std::time::Duration;
        let dir = std::env::temp_dir().join(format!("retro_db_group_flush_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut d = Database::open(&dir).unwrap();
        d.set_durability_policy(DurabilityPolicy::Group(2, Duration::from_secs(3600))).unwrap();
        d.create_table(TableSchema::builder("t").pk("id").build()).unwrap();
        let after_one = std::fs::read(dir.join(WAL_FILE)).unwrap().len();
        assert_eq!(after_one, 0, "one buffered record must not hit the file yet");
        d.insert("t", vec![Value::Int(1)]).unwrap();
        // Second record fills the group: both frames land together.
        assert!(std::fs::read(dir.join(WAL_FILE)).unwrap().len() > 0);
        let flushed = std::fs::read(dir.join(WAL_FILE)).unwrap().len();

        // A clean drop flushes the trailing partial group.
        d.insert("t", vec![Value::Int(2)]).unwrap();
        assert_eq!(std::fs::read(dir.join(WAL_FILE)).unwrap().len(), flushed);
        drop(d);
        assert!(std::fs::read(dir.join(WAL_FILE)).unwrap().len() > flushed);
        let d = Database::recover(&dir).unwrap();
        assert_eq!(d.table("t").unwrap().len(), 2);

        // Policy control requires durability; flushing an ephemeral
        // database is a harmless no-op.
        let mut eph = Database::new();
        assert!(eph
            .set_durability_policy(DurabilityPolicy::Group(2, Duration::from_millis(1)))
            .is_err());
        eph.flush_wal().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn declared_indexes_survive_wal_replay_and_snapshot() {
        let dir =
            std::env::temp_dir().join(format!("retro_db_index_recovery_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut d = Database::open(&dir).unwrap();
            d.create_table(
                TableSchema::builder("persons").pk("id").column("name", DataType::Text).build(),
            )
            .unwrap();
            d.insert("persons", vec![Value::Int(1), Value::from("Amelie")]).unwrap();
            assert!(d.create_index("persons", "name").unwrap());
            d.insert("persons", vec![Value::Int(2), Value::from("Alien")]).unwrap();
        }
        // WAL replay re-creates the declared index and backfills both rows.
        let mut d = Database::recover(&dir).unwrap();
        let name = d.table("persons").unwrap().schema().column_index("name").unwrap();
        assert_eq!(d.table("persons").unwrap().index_probe_text(name, "Alien"), Some(&[1u32][..]));

        // Snapshot + truncated WAL must carry the declaration too.
        d.checkpoint().unwrap();
        drop(d);
        let d = Database::recover(&dir).unwrap();
        assert_eq!(d.table("persons").unwrap().index_probe_text(name, "Amelie"), Some(&[0u32][..]));
        assert!(d.table("persons").unwrap().has_secondary_index(name));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
