//! A single table: schema + rows + its [`IndexSet`](crate::index).

use crate::error::StoreError;
use crate::index::IndexSet;
use crate::schema::TableSchema;
use crate::value::{DataType, Value};
use crate::Result;

/// An in-memory table.
///
/// Rows are stored in insertion order. The primary key (when declared) is
/// indexed with a hash map for O(1) FK validation, and any number of
/// secondary equality indexes (foreign-key columns by default, more via
/// [`crate::Database::create_index`]) map values to sorted posting lists
/// of row positions. Full-column scans — RETRO's bulk access pattern —
/// are served by [`Table::column_values`] / [`Table::rows`].
#[derive(Clone, Debug)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Vec<Value>>,
    indexes: IndexSet,
}

impl Table {
    /// Create an empty table for `schema`.
    pub fn new(schema: TableSchema) -> Self {
        let indexes = IndexSet::new(schema.primary_key);
        Self { schema, rows: Vec::new(), indexes }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// One row by position.
    pub fn row(&self, idx: usize) -> Option<&[Value]> {
        self.rows.get(idx).map(Vec::as_slice)
    }

    /// Find a row by primary-key value.
    pub fn row_by_pk(&self, key: i64) -> Option<&[Value]> {
        self.indexes.pk_lookup(key).map(|i| self.rows[i].as_slice())
    }

    /// Find a row's *position* by primary-key value — for callers that
    /// cache per-position data alongside the table (extraction builds
    /// row-parallel value-id caches this way).
    pub fn row_position_by_pk(&self, key: i64) -> Option<usize> {
        self.indexes.pk_lookup(key)
    }

    /// True when a row with this primary key exists.
    pub fn contains_pk(&self, key: i64) -> bool {
        self.indexes.contains_pk(key)
    }

    /// True when `col` carries a secondary equality index.
    pub fn has_secondary_index(&self, col: usize) -> bool {
        self.indexes.has_secondary(col)
    }

    /// Columns carrying a secondary index, in column order.
    pub fn secondary_index_columns(&self) -> Vec<usize> {
        self.indexes.secondary_columns().collect()
    }

    /// Row positions (sorted ascending) whose `col` equals `key`, or
    /// `None` when `col` carries no secondary index. `Some(&[])` means
    /// the index exists and proves no row matches. `NULL` keys match
    /// nothing (SQL equality semantics).
    pub fn index_probe<'a>(&'a self, col: usize, key: &Value) -> Option<&'a [u32]> {
        self.indexes.probe(col, key)
    }

    /// [`Self::index_probe`] with a raw integer key.
    pub fn index_probe_int(&self, col: usize, key: i64) -> Option<&[u32]> {
        self.indexes.probe_int(col, key)
    }

    /// [`Self::index_probe`] with a borrowed string key — the extraction
    /// hot path; no per-probe allocation.
    pub fn index_probe_text<'a>(&'a self, col: usize, key: &str) -> Option<&'a [u32]> {
        self.indexes.probe_text(col, key)
    }

    /// Exact distinct (non-NULL) value count of an indexed column, or
    /// `None` when `col` is not indexed. Planner selectivity input.
    pub fn index_distinct(&self, col: usize) -> Option<usize> {
        self.indexes.distinct(col)
    }

    /// Whether column `col` can carry an equality index, and with which
    /// key type (`true` = integer-keyed). Errors on FLOAT columns —
    /// equality on floats is a footgun and nothing in the engine needs it.
    pub(crate) fn indexable_key_type(&self, col: usize) -> Result<bool> {
        let def = &self.schema.columns[col];
        match def.ty {
            DataType::Int => Ok(true),
            DataType::Text => Ok(false),
            DataType::Float => Err(StoreError::Sql(format!(
                "cannot index FLOAT column `{}.{}`: equality indexes cover INTEGER and TEXT",
                self.schema.name, def.name
            ))),
        }
    }

    /// Create (and backfill) a secondary equality index on column `col`.
    /// Supported on `INTEGER` and `TEXT` columns; returns `false` when the
    /// column is already indexed. Exposed through
    /// [`crate::Database::create_index`], which also logs the declaration
    /// for recovery.
    pub(crate) fn create_secondary_index(&mut self, col: usize) -> Result<bool> {
        let int_keyed = self.indexable_key_type(col)?;
        Ok(self.indexes.create_secondary(col, int_keyed, &self.rows))
    }

    /// Iterator over the values of one column (by index).
    pub fn column_values(&self, col: usize) -> impl Iterator<Item = &Value> {
        self.rows.iter().map(move |r| &r[col])
    }

    /// Iterator over the values of one column (by name).
    pub fn column_values_by_name<'a>(
        &'a self,
        name: &str,
    ) -> Result<impl Iterator<Item = &'a Value>> {
        let col = self.schema.column_index(name).ok_or_else(|| StoreError::UnknownColumn {
            table: self.schema.name.clone(),
            column: name.to_owned(),
        })?;
        Ok(self.column_values(col))
    }

    /// Validate a row against the schema (arity, types, PK presence and
    /// uniqueness — in that order). Does **not** check foreign keys — those
    /// need the whole database and are enforced by
    /// [`crate::Database::insert`] and [`crate::BulkLoader::stage`]. Both
    /// ingestion paths share this routine (the bulk loader appends staged
    /// rows to the live index, so "staged earlier in the batch" and
    /// "already present" are the same check), which is what makes them
    /// report identical first errors.
    pub fn validate_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.schema.columns.len() {
            return Err(StoreError::ArityMismatch {
                table: self.schema.name.clone(),
                expected: self.schema.columns.len(),
                got: row.len(),
            });
        }
        for (val, col) in row.iter().zip(&self.schema.columns) {
            if !val.fits(col.ty) {
                return Err(StoreError::TypeMismatch {
                    table: self.schema.name.clone(),
                    column: col.name.clone(),
                    expected: col.ty.to_string(),
                    got: val.data_type().map_or_else(|| "NULL".to_owned(), |t| t.to_string()),
                });
            }
        }
        if let Some(pk) = self.schema.primary_key {
            match &row[pk] {
                Value::Int(k) => {
                    if self.indexes.contains_pk(*k) {
                        return Err(StoreError::DuplicateKey {
                            table: self.schema.name.clone(),
                            key: k.to_string(),
                        });
                    }
                }
                Value::Null => {
                    return Err(StoreError::NullKey {
                        table: self.schema.name.clone(),
                        column: self.schema.columns[pk].name.clone(),
                    })
                }
                other => {
                    return Err(StoreError::TypeMismatch {
                        table: self.schema.name.clone(),
                        column: self.schema.columns[pk].name.clone(),
                        expected: "INTEGER".to_owned(),
                        got: other.data_type().map_or_else(|| "NULL".into(), |t| t.to_string()),
                    })
                }
            }
        }
        Ok(())
    }

    /// Append a validated row. Callers must run [`Self::validate_row`] (or
    /// go through [`crate::Database::insert`]) first; this method only keeps
    /// the indexes coherent.
    pub(crate) fn push_unchecked(&mut self, row: Vec<Value>) -> usize {
        let pos = self.rows.len();
        self.indexes.note_append(&row, pos);
        self.rows.push(row);
        pos
    }

    /// Pre-size the row store and primary-key index for `additional` more
    /// rows, so a bulk load appends without reallocation.
    pub(crate) fn reserve(&mut self, additional: usize) {
        self.rows.reserve(additional);
        self.indexes.reserve_pk(additional);
    }

    /// Drop every row at position `len` and beyond, pruning the removed
    /// rows' index entries. Rollback support for atomic bulk loads
    /// ([`crate::BulkLoader`]): appends since a remembered length are
    /// undone in O(dropped), each posting-list tail pruned with one binary
    /// search.
    pub(crate) fn truncate(&mut self, len: usize) {
        if len >= self.rows.len() {
            return;
        }
        self.indexes.note_truncate(&self.rows[len..], len);
        self.rows.truncate(len);
    }

    /// Remove the rows at the given (sorted, deduplicated) positions and
    /// rebuild the indexes (survivors renumber, so incremental repair
    /// would cost as much as rebuilding).
    pub(crate) fn remove_rows(&mut self, sorted_indices: &[usize]) {
        let mut keep = vec![true; self.rows.len()];
        for &i in sorted_indices {
            if i < keep.len() {
                keep[i] = false;
            }
        }
        let mut iter = keep.iter();
        self.rows.retain(|_| *iter.next().expect("keep mask aligned"));
        self.indexes.rebuild(&self.rows);
    }

    /// Replace the table's entire row set and rebuild the indexes. WAL
    /// replay support for [`crate::TableChange::Unknown`] edits: the log
    /// records the post-edit state wholesale, so recovery installs it
    /// wholesale.
    pub(crate) fn set_rows(&mut self, rows: Vec<Vec<Value>>) {
        self.rows = rows;
        self.indexes.rebuild(&self.rows);
    }

    /// Update one cell in place (used by imputation examples to write
    /// predicted values back). The primary key column cannot be updated.
    pub fn update_cell(&mut self, row: usize, col: usize, value: Value) -> Result<()> {
        if row >= self.rows.len() || col >= self.schema.columns.len() {
            return Err(StoreError::UnknownColumn {
                table: self.schema.name.clone(),
                column: format!("index {col}"),
            });
        }
        if Some(col) == self.schema.primary_key {
            return Err(StoreError::Sql("cannot update a primary key column".into()));
        }
        let def = &self.schema.columns[col];
        if !value.fits(def.ty) {
            return Err(StoreError::TypeMismatch {
                table: self.schema.name.clone(),
                column: def.name.clone(),
                expected: def.ty.to_string(),
                got: value.data_type().map_or_else(|| "NULL".into(), |t| t.to_string()),
            });
        }
        let old = std::mem::replace(&mut self.rows[row][col], value);
        self.indexes.note_cell_update(col, &old, &self.rows[row][col], row);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::DataType;

    fn table() -> Table {
        let schema = TableSchema::builder("t")
            .pk("id")
            .column("name", DataType::Text)
            .column("score", DataType::Float)
            .build();
        Table::new(schema)
    }

    /// `table()` with a secondary index on the `name` column.
    fn indexed_table() -> Table {
        let mut t = table();
        t.create_secondary_index(1).unwrap();
        t
    }

    #[test]
    fn insert_and_lookup_by_pk() {
        let mut t = table();
        let row = vec![Value::Int(7), Value::from("abc"), Value::Float(1.5)];
        t.validate_row(&row).unwrap();
        t.push_unchecked(row);
        assert_eq!(t.len(), 1);
        assert_eq!(t.row_by_pk(7).unwrap()[1], Value::from("abc"));
        assert_eq!(t.row_position_by_pk(7), Some(0));
        assert!(t.contains_pk(7));
        assert!(!t.contains_pk(8));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let t = table();
        let err = t.validate_row(&[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, StoreError::ArityMismatch { expected: 3, got: 1, .. }));
    }

    #[test]
    fn type_mismatch_rejected() {
        let t = table();
        let err = t.validate_row(&[Value::Int(1), Value::Int(2), Value::Float(0.0)]).unwrap_err();
        assert!(matches!(err, StoreError::TypeMismatch { .. }));
    }

    #[test]
    fn int_widens_to_float_column() {
        let t = table();
        t.validate_row(&[Value::Int(1), Value::from("x"), Value::Int(3)]).unwrap();
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = table();
        t.push_unchecked(vec![Value::Int(1), Value::from("a"), Value::Null]);
        let err = t.validate_row(&[Value::Int(1), Value::from("b"), Value::Null]).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateKey { .. }));
    }

    #[test]
    fn null_pk_rejected() {
        let t = table();
        let err = t.validate_row(&[Value::Null, Value::from("a"), Value::Null]).unwrap_err();
        assert!(matches!(err, StoreError::NullKey { .. }));
    }

    #[test]
    fn column_values_by_name_scans() {
        let mut t = table();
        t.push_unchecked(vec![Value::Int(1), Value::from("a"), Value::Null]);
        t.push_unchecked(vec![Value::Int(2), Value::from("b"), Value::Null]);
        let names: Vec<_> =
            t.column_values_by_name("name").unwrap().filter_map(Value::as_text).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(t.column_values_by_name("bogus").is_err());
    }

    #[test]
    fn truncate_drops_rows_and_prunes_pk_index() {
        let mut t = table();
        t.push_unchecked(vec![Value::Int(1), Value::from("a"), Value::Null]);
        t.push_unchecked(vec![Value::Int(2), Value::from("b"), Value::Null]);
        t.truncate(1);
        assert_eq!(t.len(), 1);
        assert!(t.contains_pk(1));
        assert!(!t.contains_pk(2));
        // The truncated key must be free for reuse again.
        t.validate_row(&[Value::Int(2), Value::from("c"), Value::Null]).unwrap();
        t.truncate(5); // beyond len: no-op
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn update_cell_rules() {
        let mut t = table();
        t.push_unchecked(vec![Value::Int(1), Value::from("a"), Value::Null]);
        t.update_cell(0, 1, Value::from("z")).unwrap();
        assert_eq!(t.row(0).unwrap()[1], Value::from("z"));
        assert!(t.update_cell(0, 0, Value::Int(9)).is_err()); // PK frozen
        assert!(t.update_cell(0, 1, Value::Int(9)).is_err()); // wrong type
        assert!(t.update_cell(5, 1, Value::Null).is_err()); // out of range
    }

    #[test]
    fn secondary_index_tracks_all_mutations() {
        let mut t = indexed_table();
        assert!(t.has_secondary_index(1));
        assert!(!t.has_secondary_index(2));
        t.push_unchecked(vec![Value::Int(1), Value::from("a"), Value::Null]);
        t.push_unchecked(vec![Value::Int(2), Value::from("b"), Value::Null]);
        t.push_unchecked(vec![Value::Int(3), Value::from("a"), Value::Null]);
        assert_eq!(t.index_probe_text(1, "a"), Some(&[0u32, 2][..]));

        t.update_cell(1, 1, Value::from("a")).unwrap();
        assert_eq!(t.index_probe_text(1, "a"), Some(&[0u32, 1, 2][..]));
        assert_eq!(t.index_probe_text(1, "b"), Some(&[][..]));
        assert_eq!(t.index_distinct(1), Some(1));

        t.remove_rows(&[0]);
        assert_eq!(t.index_probe_text(1, "a"), Some(&[0u32, 1][..]));

        t.truncate(1);
        assert_eq!(t.index_probe_text(1, "a"), Some(&[0u32][..]));

        t.set_rows(vec![vec![Value::Int(9), Value::from("z"), Value::Null]]);
        assert_eq!(t.index_probe_text(1, "z"), Some(&[0u32][..]));
        assert_eq!(t.index_probe_text(1, "a"), Some(&[][..]));
    }

    #[test]
    fn float_columns_cannot_be_indexed() {
        let mut t = table();
        assert!(t.create_secondary_index(2).is_err());
        assert!(t.create_secondary_index(1).unwrap());
        assert!(!t.create_secondary_index(1).unwrap()); // idempotent
        assert_eq!(t.secondary_index_columns(), vec![1]);
    }

    #[test]
    fn unindexed_probe_returns_none() {
        let mut t = table();
        t.push_unchecked(vec![Value::Int(1), Value::from("a"), Value::Null]);
        assert_eq!(t.index_probe(1, &Value::from("a")), None);
        assert_eq!(t.index_probe_int(0, 1), None); // pk has no secondary index
        assert_eq!(t.index_distinct(1), None);
    }
}
