//! A single table: schema + rows + primary-key index.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::error::StoreError;
use crate::schema::TableSchema;
use crate::value::Value;
use crate::Result;

/// Multiply–xorshift hasher for the `i64` primary-key index.
///
/// Primary keys are integers under the engine's control (dense, often
/// sequential), so SipHash's DoS resistance buys nothing here while its
/// per-probe cost shows up directly in ingest throughput — every insert
/// probes the key index at least once, and every foreign key probes the
/// referenced table's. A Fibonacci multiply plus an xor-shift mixes the low
/// bits sequential keys differ in across the whole word in a couple of
/// cycles.
#[derive(Clone, Default)]
pub(crate) struct PkHasher(u64);

impl Hasher for PkHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the i64 key path): FNV-1a.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_i64(&mut self, i: i64) {
        let mut x = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 32;
        self.0 = x;
    }
}

type PkIndex = HashMap<i64, usize, BuildHasherDefault<PkHasher>>;

/// An in-memory table.
///
/// Rows are stored in insertion order; the primary key (when declared) is
/// indexed with a hash map for O(1) FK validation. RETRO's own access pattern
/// is full-column scans, served by [`Table::column_values`] / [`Table::rows`].
#[derive(Clone, Debug)]
pub struct Table {
    schema: TableSchema,
    rows: Vec<Vec<Value>>,
    /// primary-key value (as i64) → row index.
    pk_index: PkIndex,
}

impl Table {
    /// Create an empty table for `schema`.
    pub fn new(schema: TableSchema) -> Self {
        Self { schema, rows: Vec::new(), pk_index: PkIndex::default() }
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The table's name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// One row by position.
    pub fn row(&self, idx: usize) -> Option<&[Value]> {
        self.rows.get(idx).map(Vec::as_slice)
    }

    /// Find a row by primary-key value.
    pub fn row_by_pk(&self, key: i64) -> Option<&[Value]> {
        self.pk_index.get(&key).map(|&i| self.rows[i].as_slice())
    }

    /// True when a row with this primary key exists.
    pub fn contains_pk(&self, key: i64) -> bool {
        self.pk_index.contains_key(&key)
    }

    /// Iterator over the values of one column (by index).
    pub fn column_values(&self, col: usize) -> impl Iterator<Item = &Value> {
        self.rows.iter().map(move |r| &r[col])
    }

    /// Iterator over the values of one column (by name).
    pub fn column_values_by_name<'a>(
        &'a self,
        name: &str,
    ) -> Result<impl Iterator<Item = &'a Value>> {
        let col = self.schema.column_index(name).ok_or_else(|| StoreError::UnknownColumn {
            table: self.schema.name.clone(),
            column: name.to_owned(),
        })?;
        Ok(self.column_values(col))
    }

    /// Validate a row against the schema (arity, types, PK presence and
    /// uniqueness — in that order). Does **not** check foreign keys — those
    /// need the whole database and are enforced by
    /// [`crate::Database::insert`] and [`crate::BulkLoader::stage`]. Both
    /// ingestion paths share this routine (the bulk loader appends staged
    /// rows to the live index, so "staged earlier in the batch" and
    /// "already present" are the same check), which is what makes them
    /// report identical first errors.
    pub fn validate_row(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.schema.columns.len() {
            return Err(StoreError::ArityMismatch {
                table: self.schema.name.clone(),
                expected: self.schema.columns.len(),
                got: row.len(),
            });
        }
        for (val, col) in row.iter().zip(&self.schema.columns) {
            if !val.fits(col.ty) {
                return Err(StoreError::TypeMismatch {
                    table: self.schema.name.clone(),
                    column: col.name.clone(),
                    expected: col.ty.to_string(),
                    got: val.data_type().map_or_else(|| "NULL".to_owned(), |t| t.to_string()),
                });
            }
        }
        if let Some(pk) = self.schema.primary_key {
            match &row[pk] {
                Value::Int(k) => {
                    if self.pk_index.contains_key(k) {
                        return Err(StoreError::DuplicateKey {
                            table: self.schema.name.clone(),
                            key: k.to_string(),
                        });
                    }
                }
                Value::Null => {
                    return Err(StoreError::NullKey {
                        table: self.schema.name.clone(),
                        column: self.schema.columns[pk].name.clone(),
                    })
                }
                other => {
                    return Err(StoreError::TypeMismatch {
                        table: self.schema.name.clone(),
                        column: self.schema.columns[pk].name.clone(),
                        expected: "INTEGER".to_owned(),
                        got: other.data_type().map_or_else(|| "NULL".into(), |t| t.to_string()),
                    })
                }
            }
        }
        Ok(())
    }

    /// Append a validated row. Callers must run [`Self::validate_row`] (or
    /// go through [`crate::Database::insert`]) first; this method only keeps
    /// the PK index coherent.
    pub(crate) fn push_unchecked(&mut self, row: Vec<Value>) -> usize {
        if let Some(pk) = self.schema.primary_key {
            if let Value::Int(k) = row[pk] {
                self.pk_index.insert(k, self.rows.len());
            }
        }
        self.rows.push(row);
        self.rows.len() - 1
    }

    /// Pre-size the row store and primary-key index for `additional` more
    /// rows, so a bulk load appends without reallocation.
    pub(crate) fn reserve(&mut self, additional: usize) {
        self.rows.reserve(additional);
        if self.schema.primary_key.is_some() {
            self.pk_index.reserve(additional);
        }
    }

    /// Drop every row at position `len` and beyond, pruning the removed
    /// rows' primary-key index entries. Rollback support for atomic bulk
    /// loads ([`crate::BulkLoader`]): appends since a remembered length are
    /// undone in O(dropped).
    pub(crate) fn truncate(&mut self, len: usize) {
        if len >= self.rows.len() {
            return;
        }
        if let Some(pk) = self.schema.primary_key {
            for row in &self.rows[len..] {
                if let Value::Int(k) = row[pk] {
                    self.pk_index.remove(&k);
                }
            }
        }
        self.rows.truncate(len);
    }

    /// Remove the rows at the given (sorted, deduplicated) positions and
    /// rebuild the primary-key index.
    pub(crate) fn remove_rows(&mut self, sorted_indices: &[usize]) {
        let mut keep = vec![true; self.rows.len()];
        for &i in sorted_indices {
            if i < keep.len() {
                keep[i] = false;
            }
        }
        let mut iter = keep.iter();
        self.rows.retain(|_| *iter.next().expect("keep mask aligned"));
        self.pk_index.clear();
        if let Some(pk) = self.schema.primary_key {
            for (pos, row) in self.rows.iter().enumerate() {
                if let Value::Int(k) = row[pk] {
                    self.pk_index.insert(k, pos);
                }
            }
        }
    }

    /// Replace the table's entire row set and rebuild the primary-key
    /// index. WAL replay support for [`crate::TableChange::Unknown`]
    /// edits: the log records the post-edit state wholesale, so recovery
    /// installs it wholesale.
    pub(crate) fn set_rows(&mut self, rows: Vec<Vec<Value>>) {
        self.rows = rows;
        self.pk_index.clear();
        if let Some(pk) = self.schema.primary_key {
            for (pos, row) in self.rows.iter().enumerate() {
                if let Some(&Value::Int(k)) = row.get(pk) {
                    self.pk_index.insert(k, pos);
                }
            }
        }
    }

    /// Update one cell in place (used by imputation examples to write
    /// predicted values back). The primary key column cannot be updated.
    pub fn update_cell(&mut self, row: usize, col: usize, value: Value) -> Result<()> {
        if row >= self.rows.len() || col >= self.schema.columns.len() {
            return Err(StoreError::UnknownColumn {
                table: self.schema.name.clone(),
                column: format!("index {col}"),
            });
        }
        if Some(col) == self.schema.primary_key {
            return Err(StoreError::Sql("cannot update a primary key column".into()));
        }
        let def = &self.schema.columns[col];
        if !value.fits(def.ty) {
            return Err(StoreError::TypeMismatch {
                table: self.schema.name.clone(),
                column: def.name.clone(),
                expected: def.ty.to_string(),
                got: value.data_type().map_or_else(|| "NULL".into(), |t| t.to_string()),
            });
        }
        self.rows[row][col] = value;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::value::DataType;

    fn table() -> Table {
        let schema = TableSchema::builder("t")
            .pk("id")
            .column("name", DataType::Text)
            .column("score", DataType::Float)
            .build();
        Table::new(schema)
    }

    #[test]
    fn insert_and_lookup_by_pk() {
        let mut t = table();
        let row = vec![Value::Int(7), Value::from("abc"), Value::Float(1.5)];
        t.validate_row(&row).unwrap();
        t.push_unchecked(row);
        assert_eq!(t.len(), 1);
        assert_eq!(t.row_by_pk(7).unwrap()[1], Value::from("abc"));
        assert!(t.contains_pk(7));
        assert!(!t.contains_pk(8));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let t = table();
        let err = t.validate_row(&[Value::Int(1)]).unwrap_err();
        assert!(matches!(err, StoreError::ArityMismatch { expected: 3, got: 1, .. }));
    }

    #[test]
    fn type_mismatch_rejected() {
        let t = table();
        let err = t.validate_row(&[Value::Int(1), Value::Int(2), Value::Float(0.0)]).unwrap_err();
        assert!(matches!(err, StoreError::TypeMismatch { .. }));
    }

    #[test]
    fn int_widens_to_float_column() {
        let t = table();
        t.validate_row(&[Value::Int(1), Value::from("x"), Value::Int(3)]).unwrap();
    }

    #[test]
    fn duplicate_pk_rejected() {
        let mut t = table();
        t.push_unchecked(vec![Value::Int(1), Value::from("a"), Value::Null]);
        let err = t.validate_row(&[Value::Int(1), Value::from("b"), Value::Null]).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateKey { .. }));
    }

    #[test]
    fn null_pk_rejected() {
        let t = table();
        let err = t.validate_row(&[Value::Null, Value::from("a"), Value::Null]).unwrap_err();
        assert!(matches!(err, StoreError::NullKey { .. }));
    }

    #[test]
    fn column_values_by_name_scans() {
        let mut t = table();
        t.push_unchecked(vec![Value::Int(1), Value::from("a"), Value::Null]);
        t.push_unchecked(vec![Value::Int(2), Value::from("b"), Value::Null]);
        let names: Vec<_> =
            t.column_values_by_name("name").unwrap().filter_map(Value::as_text).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert!(t.column_values_by_name("bogus").is_err());
    }

    #[test]
    fn truncate_drops_rows_and_prunes_pk_index() {
        let mut t = table();
        t.push_unchecked(vec![Value::Int(1), Value::from("a"), Value::Null]);
        t.push_unchecked(vec![Value::Int(2), Value::from("b"), Value::Null]);
        t.truncate(1);
        assert_eq!(t.len(), 1);
        assert!(t.contains_pk(1));
        assert!(!t.contains_pk(2));
        // The truncated key must be free for reuse again.
        t.validate_row(&[Value::Int(2), Value::from("c"), Value::Null]).unwrap();
        t.truncate(5); // beyond len: no-op
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn update_cell_rules() {
        let mut t = table();
        t.push_unchecked(vec![Value::Int(1), Value::from("a"), Value::Null]);
        t.update_cell(0, 1, Value::from("z")).unwrap();
        assert_eq!(t.row(0).unwrap()[1], Value::from("z"));
        assert!(t.update_cell(0, 0, Value::Int(9)).is_err()); // PK frozen
        assert!(t.update_cell(0, 1, Value::Int(9)).is_err()); // wrong type
        assert!(t.update_cell(5, 1, Value::Null).is_err()); // out of range
    }
}
