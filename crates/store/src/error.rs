//! Error type for the storage engine.

use std::fmt;

/// Anything that can go wrong inside `retro-store`.
#[derive(Clone, Debug, PartialEq)]
pub enum StoreError {
    /// Table already exists.
    DuplicateTable(String),
    /// Referenced table does not exist.
    UnknownTable(String),
    /// Referenced column does not exist in the named table.
    UnknownColumn {
        /// Table the lookup ran against.
        table: String,
        /// The missing column name.
        column: String,
    },
    /// Value does not fit the declared column type.
    TypeMismatch {
        /// Table owning the column.
        table: String,
        /// Column whose type was violated.
        column: String,
        /// The declared column type.
        expected: String,
        /// The offending value's type (or `NULL`).
        got: String,
    },
    /// Row arity differs from the table's column count.
    ArityMismatch {
        /// Target table.
        table: String,
        /// The table's column count.
        expected: usize,
        /// The row's value count.
        got: usize,
    },
    /// Primary-key value already present.
    DuplicateKey {
        /// Table owning the primary key.
        table: String,
        /// The repeated key, rendered for display.
        key: String,
    },
    /// Primary-key column received NULL.
    NullKey {
        /// Table owning the primary key.
        table: String,
        /// The primary-key column name.
        column: String,
    },
    /// Foreign-key value has no matching referenced row.
    ForeignKeyViolation {
        /// Table owning the foreign-key column.
        table: String,
        /// The constrained column.
        column: String,
        /// The dangling key, rendered for display.
        value: String,
    },
    /// A foreign key declaration references a missing table/column.
    BadForeignKey(String),
    /// CSV input could not be parsed.
    Csv(String),
    /// A CSV record failed conversion or a constraint check during bulk
    /// import. `line` is the 1-based line in the CSV document (the header
    /// is line 1); `source` is the underlying violation.
    CsvRow {
        /// 1-based CSV line number of the offending record.
        line: usize,
        /// The underlying conversion or constraint error.
        source: Box<StoreError>,
    },
    /// A row failed a constraint check while being staged into a bulk
    /// batch (see [`crate::BulkLoader::stage`]); the whole batch was rolled
    /// back, so nothing from it remains inserted.
    BulkRow {
        /// Table the offending row was staged for.
        table: String,
        /// 0-based position of the offending row in batch staging order.
        row: usize,
        /// The underlying constraint violation — the same error the
        /// row-by-row insert path would have reported first.
        source: Box<StoreError>,
    },
    /// A [`crate::BulkLoader`] was used after its batch already failed and
    /// rolled back (API misuse: start a new loader instead).
    BulkPoisoned,
    /// SQL input could not be tokenized/parsed/executed.
    Sql(String),
    /// A durability I/O operation (WAL append, snapshot write/read)
    /// failed. The message is the rendered `std::io::Error` — the error
    /// itself is not stored so `StoreError` stays `Clone + PartialEq`.
    Io(String),
    /// Persisted state (WAL or snapshot) is structurally damaged in a way
    /// recovery must not paper over: a checksummed record that fails to
    /// decode, a sequence gap inside the log, a snapshot whose checksum
    /// does not match, or a replayed mutation the live engine rejects.
    Corruption(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateTable(t) => write!(f, "table `{t}` already exists"),
            StoreError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            StoreError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            StoreError::TypeMismatch { table, column, expected, got } => {
                write!(f, "type mismatch in `{table}.{column}`: expected {expected}, got {got}")
            }
            StoreError::ArityMismatch { table, expected, got } => {
                write!(f, "row arity mismatch for `{table}`: expected {expected}, got {got}")
            }
            StoreError::DuplicateKey { table, key } => {
                write!(f, "duplicate primary key `{key}` in `{table}`")
            }
            StoreError::NullKey { table, column } => {
                write!(f, "NULL primary key in `{table}.{column}`")
            }
            StoreError::ForeignKeyViolation { table, column, value } => write!(
                f,
                "foreign key violation: `{table}.{column}` = `{value}` has no referenced row"
            ),
            StoreError::BadForeignKey(msg) => write!(f, "invalid foreign key: {msg}"),
            StoreError::Csv(msg) => write!(f, "csv error: {msg}"),
            StoreError::CsvRow { line, source } => {
                write!(f, "csv import failed at line {line}: {source}")
            }
            StoreError::BulkRow { table, row, source } => {
                write!(f, "bulk ingest into `{table}` failed at batch row {row}: {source}")
            }
            StoreError::BulkPoisoned => {
                write!(f, "bulk batch already failed and rolled back; start a new loader")
            }
            StoreError::Sql(msg) => write!(f, "sql error: {msg}"),
            StoreError::Io(msg) => write!(f, "durability i/o error: {msg}"),
            StoreError::Corruption(msg) => write!(f, "persisted state corrupt: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}
