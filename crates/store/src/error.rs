//! Error type for the storage engine.

use std::fmt;

/// Anything that can go wrong inside `retro-store`.
#[derive(Clone, Debug, PartialEq)]
pub enum StoreError {
    /// Table already exists.
    DuplicateTable(String),
    /// Referenced table does not exist.
    UnknownTable(String),
    /// Referenced column does not exist in the named table.
    UnknownColumn { table: String, column: String },
    /// Value does not fit the declared column type.
    TypeMismatch { table: String, column: String, expected: String, got: String },
    /// Row arity differs from the table's column count.
    ArityMismatch { table: String, expected: usize, got: usize },
    /// Primary-key value already present.
    DuplicateKey { table: String, key: String },
    /// Primary-key column received NULL.
    NullKey { table: String, column: String },
    /// Foreign-key value has no matching referenced row.
    ForeignKeyViolation { table: String, column: String, value: String },
    /// A foreign key declaration references a missing table/column.
    BadForeignKey(String),
    /// CSV input could not be parsed.
    Csv(String),
    /// A CSV record failed conversion or a constraint check during bulk
    /// import. `line` is the 1-based line in the CSV document (the header
    /// is line 1); `source` is the underlying violation.
    CsvRow {
        /// 1-based CSV line number of the offending record.
        line: usize,
        /// The underlying conversion or constraint error.
        source: Box<StoreError>,
    },
    /// SQL input could not be tokenized/parsed/executed.
    Sql(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateTable(t) => write!(f, "table `{t}` already exists"),
            StoreError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            StoreError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            StoreError::TypeMismatch { table, column, expected, got } => {
                write!(f, "type mismatch in `{table}.{column}`: expected {expected}, got {got}")
            }
            StoreError::ArityMismatch { table, expected, got } => {
                write!(f, "row arity mismatch for `{table}`: expected {expected}, got {got}")
            }
            StoreError::DuplicateKey { table, key } => {
                write!(f, "duplicate primary key `{key}` in `{table}`")
            }
            StoreError::NullKey { table, column } => {
                write!(f, "NULL primary key in `{table}.{column}`")
            }
            StoreError::ForeignKeyViolation { table, column, value } => write!(
                f,
                "foreign key violation: `{table}.{column}` = `{value}` has no referenced row"
            ),
            StoreError::BadForeignKey(msg) => write!(f, "invalid foreign key: {msg}"),
            StoreError::Csv(msg) => write!(f, "csv error: {msg}"),
            StoreError::CsvRow { line, source } => {
                write!(f, "csv import failed at line {line}: {source}")
            }
            StoreError::Sql(msg) => write!(f, "sql error: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}
