//! Cross-kernel consistency tests for the numeric substrate: every sparse
//! product path must agree with the dense reference, the vector free
//! functions must satisfy their algebraic identities, and the summary
//! statistics must match hand-computable values. Randomized cases use the
//! workspace's seeded RNG so failures reproduce.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retro_linalg::stats::{self, Summary};
use retro_linalg::{vector, CooMatrix, CsrMatrix, Matrix};

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-2.0f32..2.0))
}

fn random_sparse(rng: &mut StdRng, rows: usize, cols: usize, nnz: usize) -> CsrMatrix {
    let mut coo = CooMatrix::new(rows, cols);
    for _ in 0..nnz {
        coo.push(rng.gen_range(0..rows), rng.gen_range(0..cols), rng.gen_range(-1.0f32..1.0));
    }
    coo.to_csr()
}

#[test]
fn sparse_product_matches_dense_reference() {
    let mut rng = StdRng::seed_from_u64(101);
    for (n, m, d, nnz) in [(1, 1, 1, 1), (5, 7, 3, 12), (16, 16, 8, 64), (30, 11, 4, 90)] {
        let sparse = random_sparse(&mut rng, n, m, nnz);
        let dense_lhs = sparse.to_dense();
        let rhs = random_matrix(&mut rng, m, d);
        let via_sparse = sparse.mul_dense(&rhs);
        let via_dense = dense_lhs.matmul(&rhs);
        assert_eq!(via_sparse.shape(), (n, d));
        assert!(
            via_sparse.max_abs_diff(&via_dense) < 1e-4,
            "shape ({n},{m},{d}): diff {}",
            via_sparse.max_abs_diff(&via_dense)
        );
    }
}

#[test]
fn sparse_range_product_tiles_the_full_product() {
    let mut rng = StdRng::seed_from_u64(103);
    let (n, m, d) = (23, 9, 5);
    let sparse = random_sparse(&mut rng, n, m, 70);
    let rhs = random_matrix(&mut rng, m, d);
    let full = sparse.mul_dense(&rhs);
    // Recompute in three uneven row tiles through mul_dense_range_into.
    let mut tiled = Matrix::zeros(n, d);
    for range in [0..7usize, 7..8, 8..n] {
        let chunk_start = range.start;
        let out = &mut tiled.as_mut_slice()[chunk_start * d..range.end * d];
        sparse.mul_dense_range_into(&rhs, range, out);
    }
    assert!(full.max_abs_diff(&tiled) < 1e-6);
}

#[test]
fn sparse_transpose_is_an_involution_and_swaps_products() {
    let mut rng = StdRng::seed_from_u64(107);
    let sparse = random_sparse(&mut rng, 13, 6, 30);
    let twice = sparse.transpose().transpose();
    assert_eq!((twice.rows(), twice.cols()), (13, 6));
    assert!(sparse.to_dense().max_abs_diff(&twice.to_dense()) < 1e-7);
    // (Aᵀ)·X == (A·X computed through the dense transpose reference).
    let x = random_matrix(&mut rng, 13, 4);
    let via_sparse_t = sparse.transpose().mul_dense(&x);
    let via_dense_t = sparse.to_dense().transpose().matmul(&x);
    assert!(via_sparse_t.max_abs_diff(&via_dense_t) < 1e-4);
}

#[test]
fn coo_duplicates_accumulate() {
    let mut coo = CooMatrix::new(2, 2);
    coo.push(0, 1, 0.5);
    coo.push(0, 1, 0.25);
    coo.push(1, 0, -1.0);
    let csr = coo.to_csr();
    assert_eq!(csr.nnz(), 2, "duplicate coordinates must merge");
    let dense = csr.to_dense();
    assert!((dense.get(0, 1) - 0.75).abs() < 1e-7);
    assert!((dense.get(1, 0) + 1.0).abs() < 1e-7);
}

#[test]
fn dense_matvec_matches_matmul_column() {
    let mut rng = StdRng::seed_from_u64(109);
    let a = random_matrix(&mut rng, 8, 5);
    let v: Vec<f32> = (0..5).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let as_vec = a.matvec(&v);
    let as_col = a.matmul(&Matrix::from_rows(&v.iter().map(|&x| vec![x]).collect::<Vec<_>>()));
    for r in 0..8 {
        assert!((as_vec[r] - as_col.get(r, 0)).abs() < 1e-5);
    }
}

#[test]
fn dense_transpose_reverses_matmul_order() {
    let mut rng = StdRng::seed_from_u64(113);
    let a = random_matrix(&mut rng, 6, 4);
    let b = random_matrix(&mut rng, 4, 3);
    // (A·B)ᵀ == Bᵀ·Aᵀ
    let left = a.matmul(&b).transpose();
    let right = b.transpose().matmul(&a.transpose());
    assert!(left.max_abs_diff(&right) < 1e-5);
}

#[test]
fn normalize_rows_leaves_unit_or_zero_rows() {
    let mut m = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0], vec![-0.1, 0.0]]);
    m.normalize_rows();
    assert!((vector::norm(m.row(0)) - 1.0).abs() < 1e-6);
    assert_eq!(m.row(1), &[0.0, 0.0], "zero rows must stay zero, not NaN");
    assert!((vector::norm(m.row(2)) - 1.0).abs() < 1e-6);
}

#[test]
fn vector_identities_hold() {
    let mut rng = StdRng::seed_from_u64(127);
    for _ in 0..50 {
        let a: Vec<f32> = (0..6).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
        let b: Vec<f32> = (0..6).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
        // ‖a‖² == a·a
        assert!((vector::norm_sq(&a) - vector::dot(&a, &a)).abs() < 1e-4);
        // ‖a−b‖² == ‖a‖² − 2a·b + ‖b‖²
        let expansion = vector::norm_sq(&a) - 2.0 * vector::dot(&a, &b) + vector::norm_sq(&b);
        assert!((vector::dist_sq(&a, &b) - expansion).abs() < 1e-3);
        // axpy(α, x, y) == y + αx, checked against scalar arithmetic.
        let alpha = rng.gen_range(-2.0f32..2.0);
        let mut y = b.clone();
        vector::axpy(alpha, &a, &mut y);
        for k in 0..6 {
            assert!((y[k] - (b[k] + alpha * a[k])).abs() < 1e-5);
        }
        // cosine is scale-invariant for positive scaling.
        let mut scaled = a.clone();
        vector::scale(2.5, &mut scaled);
        assert!((vector::cosine(&a, &b) - vector::cosine(&scaled, &b)).abs() < 1e-4);
    }
}

#[test]
fn normalized_vector_has_unit_norm_and_direction() {
    let mut v = vec![1.0f32, -2.0, 2.0];
    let before = v.clone();
    vector::normalize(&mut v);
    assert!((vector::norm(&v) - 1.0).abs() < 1e-6);
    assert!(vector::cosine(&v, &before) > 1.0 - 1e-6);
    // Zero vectors are left untouched.
    let mut z = vec![0.0f32; 3];
    vector::normalize(&mut z);
    assert_eq!(z, vec![0.0; 3]);
}

#[test]
fn centroid_averages_rows() {
    let rows = [vec![1.0f32, 0.0], vec![3.0, 2.0], vec![2.0, 4.0]];
    let c = vector::centroid(rows.iter().map(|r| r.as_slice()), 2);
    assert!(vector::approx_eq(&c, &[2.0, 2.0], 1e-6));
    // Empty input yields the zero vector of the requested dimension.
    let empty = vector::centroid(std::iter::empty::<&[f32]>(), 3);
    assert_eq!(empty, vec![0.0; 3]);
}

#[test]
fn stats_match_hand_computed_values() {
    let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
    assert!((stats::mean(&xs) - 5.0).abs() < 1e-12);
    // Population std-dev of the classic example set: √(32/8) = 2.
    assert!((stats::std_dev(&xs) - 2.0).abs() < 1e-12);
    assert!((stats::median(&xs) - 4.5).abs() < 1e-12);
    assert_eq!(stats::min(&xs), 2.0);
    assert_eq!(stats::max(&xs), 9.0);

    let odd = [3.0, 1.0, 2.0];
    assert!((stats::median(&odd) - 2.0).abs() < 1e-12);

    let summary = Summary::of(&xs);
    assert_eq!(summary.n, 8);
    assert!((summary.mean - 5.0).abs() < 1e-12);
    assert!((summary.std_dev - stats::std_dev(&xs)).abs() < 1e-12);
    assert_eq!((summary.min, summary.max), (2.0, 9.0));
}
