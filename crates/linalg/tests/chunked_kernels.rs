//! Bit-identity of the chunked vector kernels against naive scalar loops.
//!
//! The solver determinism story (`tests/solver_determinism.rs` at the
//! workspace root) rests on every float operation having one fixed order.
//! The chunked kernels in `retro_linalg::vector` process [`vector::LANES`]
//! elements per step for speed; this suite pins that the chunking never
//! changes a single bit relative to a transparent scalar model:
//!
//! * element-wise kernels (`axpy`, `scale`, and the scaling step of
//!   `normalize`) must equal the obvious one-element-at-a-time loop, and
//! * reductions (`dot`, `dist_sq`, and through them `norm`/`normalize`)
//!   must equal the documented lane model — element `i` accumulates into
//!   lane `i % LANES`, lanes combine with the fixed pairwise tree — written
//!   here as a naive scalar loop with no chunking.
//!
//! Checked exhaustively for every length 0..64 (all tail shapes around the
//! lane width) and by proptest on random lengths and values.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retro_linalg::vector::{self, LANES};

/// The scalar model of the chunked reductions: one element at a time into
/// `LANES` accumulators, then the fixed pairwise combination tree.
fn naive_lane_sum(terms: impl Iterator<Item = f32>) -> f32 {
    let mut lanes = [0.0f32; LANES];
    for (i, t) in terms.enumerate() {
        lanes[i % LANES] += t;
    }
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
}

fn naive_dot(a: &[f32], b: &[f32]) -> f32 {
    naive_lane_sum(a.iter().zip(b).map(|(x, y)| x * y))
}

fn naive_dist_sq(a: &[f32], b: &[f32]) -> f32 {
    naive_lane_sum(a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)))
}

fn naive_axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

fn naive_scale(alpha: f32, y: &mut [f32]) {
    for yi in y.iter_mut() {
        *yi *= alpha;
    }
}

/// The scalar model of `normalize`: norm from the naive lane-model dot,
/// then the naive element-wise scaling, with the same zero-vector guard.
fn naive_normalize(y: &mut [f32]) {
    let n = naive_dot(y, y).sqrt();
    if n > f32::EPSILON {
        naive_scale(1.0 / n, y);
    }
}

/// Deterministic "awkward" test values: mixed magnitudes and signs so that
/// float addition is thoroughly non-associative — any reordering in the
/// chunked kernels would show up as a bit difference.
fn awkward_values(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let mantissa: f32 = rng.gen_range(-1.0..1.0);
            let exponent: i32 = rng.gen_range(-12..12);
            mantissa * (2.0f32).powi(exponent)
        })
        .collect()
}

#[test]
fn every_length_to_64_matches_the_scalar_model_exactly() {
    for len in 0..64usize {
        for seed in 0..4u64 {
            let a = awkward_values(len, seed * 1000 + len as u64);
            let b = awkward_values(len, seed * 1000 + 500 + len as u64);
            let alpha = 1.0 + seed as f32 * 0.37 - len as f32 * 0.011;

            assert_eq!(
                vector::dot(&a, &b).to_bits(),
                naive_dot(&a, &b).to_bits(),
                "dot diverged at len {len} seed {seed}"
            );
            assert_eq!(
                vector::dist_sq(&a, &b).to_bits(),
                naive_dist_sq(&a, &b).to_bits(),
                "dist_sq diverged at len {len} seed {seed}"
            );

            let mut y = b.clone();
            let mut y_ref = b.clone();
            vector::axpy(alpha, &a, &mut y);
            naive_axpy(alpha, &a, &mut y_ref);
            assert_eq!(bits(&y), bits(&y_ref), "axpy diverged at len {len} seed {seed}");

            let mut y = a.clone();
            let mut y_ref = a.clone();
            vector::scale(alpha, &mut y);
            naive_scale(alpha, &mut y_ref);
            assert_eq!(bits(&y), bits(&y_ref), "scale diverged at len {len} seed {seed}");

            let mut y = a.clone();
            let mut y_ref = a.clone();
            vector::normalize(&mut y);
            naive_normalize(&mut y_ref);
            assert_eq!(bits(&y), bits(&y_ref), "normalize diverged at len {len} seed {seed}");
        }
    }
}

#[test]
fn normalize_zero_vector_guard_matches_model() {
    for len in [0usize, 1, 7, 8, 9, 63] {
        let mut y = vec![0.0f32; len];
        let mut y_ref = vec![0.0f32; len];
        vector::normalize(&mut y);
        naive_normalize(&mut y_ref);
        assert_eq!(bits(&y), bits(&y_ref), "zero-vector normalize diverged at len {len}");
    }
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_length_dot_is_bit_identical(
        len in 0usize..300,
        seed in 0u64..1_000_000,
    ) {
        let a = awkward_values(len, seed);
        let b = awkward_values(len, seed.wrapping_add(7919));
        prop_assert_eq!(vector::dot(&a, &b).to_bits(), naive_dot(&a, &b).to_bits());
        prop_assert_eq!(
            vector::dist_sq(&a, &b).to_bits(),
            naive_dist_sq(&a, &b).to_bits()
        );
    }

    #[test]
    fn random_length_axpy_scale_normalize_are_bit_identical(
        len in 0usize..300,
        seed in 0u64..1_000_000,
        alpha in -4.0f32..4.0,
    ) {
        let x = awkward_values(len, seed);
        let start = awkward_values(len, seed.wrapping_add(104_729));

        let mut y = start.clone();
        let mut y_ref = start.clone();
        vector::axpy(alpha, &x, &mut y);
        naive_axpy(alpha, &x, &mut y_ref);
        prop_assert_eq!(bits(&y), bits(&y_ref));

        let mut y = start.clone();
        let mut y_ref = start.clone();
        vector::scale(alpha, &mut y);
        naive_scale(alpha, &mut y_ref);
        prop_assert_eq!(bits(&y), bits(&y_ref));

        let mut y = start.clone();
        let mut y_ref = start;
        vector::normalize(&mut y);
        naive_normalize(&mut y_ref);
        prop_assert_eq!(bits(&y), bits(&y_ref));
    }
}
