//! Row-major dense `f32` matrices.
//!
//! [`Matrix`] is the carrier type for embedding matrices `W`, `W0` and the
//! weight matrices of the neural-network substrate. Rows are text-value /
//! sample vectors, so the API is row-oriented: row views, row axpy, row-wise
//! normalization, and a cache-friendly `i-k-j` matrix multiply.

use crate::vector;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl std::fmt::Debug for Matrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows <= 8 && self.cols <= 8 {
            for r in 0..self.rows {
                write!(f, "\n  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

impl Matrix {
    /// An all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from an existing row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "Matrix::from_vec: buffer size mismatch");
        Self { rows, cols, data }
    }

    /// Build from a slice of equal-length rows.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged input");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Build by evaluating `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterate over row views.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copy `src` into row `r`.
    pub fn set_row(&mut self, r: usize, src: &[f32]) {
        self.row_mut(r).copy_from_slice(src);
    }

    /// Fill every element with `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    /// `self += alpha * other`, element-wise.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "Matrix::axpy: shape mismatch");
        vector::axpy(alpha, &other.data, &mut self.data);
    }

    /// `self *= alpha`, element-wise.
    pub fn scale(&mut self, alpha: f32) {
        vector::scale(alpha, &mut self.data);
    }

    /// Matrix product `self × rhs` with the cache-friendly i-k-j loop order.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul: inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                vector::axpy(a_ik, rhs.row(k), out_row);
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// `self × v` for a column vector `v`.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        self.iter_rows().map(|row| vector::dot(row, v)).collect()
    }

    /// Normalize every row to unit Euclidean length (zero rows stay zero).
    pub fn normalize_rows(&mut self) {
        let cols = self.cols.max(1);
        for row in self.data.chunks_exact_mut(cols) {
            vector::normalize(row);
        }
    }

    /// Mean of all rows.
    pub fn row_centroid(&self) -> Vec<f32> {
        vector::centroid(self.iter_rows(), self.cols)
    }

    /// Sum of all rows.
    pub fn row_sum(&self) -> Vec<f32> {
        let mut acc = vec![0.0; self.cols];
        for row in self.iter_rows() {
            vector::axpy(1.0, row, &mut acc);
        }
        acc
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        vector::norm(&self.data)
    }

    /// Maximum absolute element-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }

    /// Horizontal concatenation `[self | rhs]` (same row count).
    pub fn hconcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "hconcat: row count mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Euclidean norm of every row, in row order.
    ///
    /// Computed with the chunked [`vector::norm`] kernel, so the values are
    /// bit-identical to calling it per row. The nearest-neighbour paths
    /// (`retro_embed::nn`, `retro_core::serve`) precompute this once per
    /// matrix and turn each cosine query into a [`Matrix::dot_scan`] plus a
    /// per-row division.
    pub fn row_norms(&self) -> Vec<f32> {
        (0..self.rows).map(|r| vector::norm(self.row(r))).collect()
    }

    /// Dot product of `query` against every row: `out[i] = dot(row_i, query)`.
    ///
    /// The scan is row-partitioned across `threads` (clamped to at least 1
    /// and at most the row count) with `std::thread::scope`, each worker
    /// writing a disjoint slice of the output. Every element is produced by
    /// the same chunked [`vector::dot`] kernel on the same row data, so the
    /// result is **bit-identical for every thread count** — the partition
    /// never reorders a single row's accumulation.
    ///
    /// # Panics
    /// Panics if `query.len() != self.cols()`. This is a hard (release-mode)
    /// check, unlike the per-element kernels' debug asserts: the scan sits
    /// on the serving query path where arbitrary external vectors arrive,
    /// and a silent prefix-only dot would return plausible-looking but
    /// meaningless rankings. The check is once per scan, not per row.
    pub fn dot_scan(&self, query: &[f32], threads: usize) -> Vec<f32> {
        assert_eq!(query.len(), self.cols, "dot_scan: dimension mismatch");
        let threads = threads.clamp(1, self.rows.max(1));
        if threads == 1 {
            return self.matvec(query);
        }
        let mut out = vec![0.0f32; self.rows];
        let chunk = self.rows.div_ceil(threads);
        std::thread::scope(|s| {
            for (t, out_chunk) in out.chunks_mut(chunk).enumerate() {
                let start = t * chunk;
                s.spawn(move || {
                    for (j, o) in out_chunk.iter_mut().enumerate() {
                        *o = vector::dot(self.row(start + j), query);
                    }
                });
            }
        });
        out
    }

    /// Gather the listed rows into a new matrix (rows may repeat).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.set_row(dst, self.row(src));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]])
    }

    #[test]
    fn shape_and_access() {
        let m = sample();
        assert_eq!(m.shape(), (3, 2));
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn from_vec_round_trips() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_rejects_bad_buffer() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let m = sample();
        let id = Matrix::identity(2);
        assert_eq!(m.matmul(&id), m);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = sample();
        let v = vec![2.0, -1.0];
        assert_eq!(m.matvec(&v), vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn normalize_rows_makes_unit_rows() {
        let mut m = sample();
        m.normalize_rows();
        for r in m.iter_rows() {
            assert!((crate::vector::norm(r) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn normalize_rows_keeps_zero_rows() {
        let mut m = Matrix::zeros(2, 3);
        m.set_row(0, &[3.0, 0.0, 4.0]);
        m.normalize_rows();
        assert_eq!(m.row(1), &[0.0, 0.0, 0.0]);
        assert!((m.get(0, 0) - 0.6).abs() < 1e-6);
    }

    #[test]
    fn hconcat_doubles_width() {
        let m = sample();
        let cat = m.hconcat(&m);
        assert_eq!(cat.shape(), (3, 4));
        assert_eq!(cat.row(1), &[3.0, 4.0, 3.0, 4.0]);
    }

    #[test]
    fn select_rows_gathers() {
        let m = sample();
        let s = m.select_rows(&[2, 0, 2]);
        assert_eq!(s.row(0), &[5.0, 6.0]);
        assert_eq!(s.row(1), &[1.0, 2.0]);
        assert_eq!(s.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn row_norms_match_per_row_kernel() {
        let m = sample();
        let norms = m.row_norms();
        assert_eq!(norms.len(), 3);
        for (r, &n) in norms.iter().enumerate() {
            assert_eq!(n, crate::vector::norm(m.row(r)));
        }
        assert!(Matrix::zeros(0, 4).row_norms().is_empty());
    }

    #[test]
    fn dot_scan_matches_matvec_for_every_thread_count() {
        let m = Matrix::from_fn(37, 11, |r, c| ((r * 31 + c * 7) as f32 * 0.13).sin());
        let query: Vec<f32> = (0..11).map(|i| (i as f32 * 0.71).cos()).collect();
        let serial = m.dot_scan(&query, 1);
        assert_eq!(serial, m.matvec(&query));
        for threads in [2usize, 3, 8, 64] {
            assert_eq!(
                serial,
                m.dot_scan(&query, threads),
                "dot_scan diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn dot_scan_handles_degenerate_shapes() {
        assert!(Matrix::zeros(0, 3).dot_scan(&[1.0, 2.0, 3.0], 4).is_empty());
        assert_eq!(Matrix::zeros(5, 0).dot_scan(&[], 4), vec![0.0; 5]);
    }

    #[test]
    fn row_centroid_and_sum() {
        let m = sample();
        assert_eq!(m.row_centroid(), vec![3.0, 4.0]);
        assert_eq!(m.row_sum(), vec![9.0, 12.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut m = sample();
        let other = sample();
        m.axpy(1.0, &other);
        m.scale(0.5);
        assert_eq!(m, sample());
    }

    #[test]
    fn max_abs_diff_detects_change() {
        let a = sample();
        let mut b = sample();
        b.set(2, 1, 10.0);
        assert_eq!(a.max_abs_diff(&b), 4.0);
    }
}
