//! # retro-linalg
//!
//! Minimal dense/sparse linear-algebra substrate for the RETRO workspace.
//!
//! The retrofitting solvers of the paper (Eq. 8–11) are expressed as repeated
//! applications of sparse adjacency operators to a dense `n × D` embedding
//! matrix, followed by row-wise rescaling. This crate provides exactly the
//! primitives those solvers need:
//!
//! * [`Matrix`] — a row-major dense `f32` matrix with row views, BLAS-free
//!   matrix multiply and row-wise operations,
//! * [`CsrMatrix`] — compressed sparse row matrices for adjacency/weight
//!   operators, with `CSR × dense` products and transposition,
//! * [`vector`] — free functions on `&[f32]` slices (dot, norms, axpy,
//!   centroid, cosine similarity),
//! * [`stats`] — small summary-statistics helpers used by the evaluation
//!   harness (mean, standard deviation, median).
//!
//! Everything is deterministic and single-threaded; parallel drivers live in
//! higher layers so this crate stays dependency-free.

pub mod dense;
pub mod sparse;
pub mod stats;
pub mod vector;

pub use dense::Matrix;
pub use sparse::{CooMatrix, CsrMatrix};
