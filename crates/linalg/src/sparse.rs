//! Sparse matrices in coordinate (COO) and compressed-sparse-row (CSR) form.
//!
//! The retrofitting operators `(γ^r_ij)`, `(δ^r_ij)` and graph adjacency are
//! extremely sparse (a handful of relations per text value out of tens of
//! thousands), so the solvers assemble them as [`CooMatrix`] triplets and
//! convert once to [`CsrMatrix`] for repeated `CSR × dense` products.

use crate::dense::Matrix;
use crate::vector;

/// A sparse matrix under assembly: unordered `(row, col, value)` triplets.
///
/// Duplicate coordinates are allowed and are summed during conversion to CSR,
/// which matches how the paper's weight matrices superimpose `γ` and `γ̄ᵀ`
/// contributions (Eq. 10).
#[derive(Clone, Debug, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    triplets: Vec<(u32, u32, f32)>,
}

impl CooMatrix {
    /// An empty `rows × cols` COO matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols, triplets: Vec::new() }
    }

    /// Record `m[row, col] += value`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "CooMatrix::push: out of bounds");
        if value != 0.0 {
            self.triplets.push((row as u32, col as u32, value));
        }
    }

    /// Number of recorded triplets (before duplicate merging).
    pub fn nnz_upper_bound(&self) -> usize {
        self.triplets.len()
    }

    /// Convert to CSR, merging duplicate coordinates by summation.
    ///
    /// Rows are bucketed with a counting sort (O(nnz + rows), not a global
    /// O(nnz log nnz) comparison sort — conversion is on the solver kernels'
    /// construction path), then each row is sorted by column with a stable
    /// sort, so duplicates merge in insertion order: deterministic for a
    /// given push sequence.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row: count, prefix-sum into row starts, scatter.
        let mut starts = vec![0u32; self.rows + 1];
        for &(r, _, _) in &self.triplets {
            starts[r as usize + 1] += 1;
        }
        for r in 0..self.rows {
            starts[r + 1] += starts[r];
        }
        let mut cursor: Vec<u32> = starts[..self.rows].to_vec();
        let mut by_row: Vec<(u32, f32)> = vec![(0, 0.0); self.triplets.len()];
        for &(r, c, v) in &self.triplets {
            let at = cursor[r as usize] as usize;
            by_row[at] = (c, v);
            cursor[r as usize] += 1;
        }

        // Per-row: stable sort by column (rows are short — this is an
        // insertion sort in practice), then merge duplicates by summation.
        let mut row_ptr = vec![0u32; self.rows + 1];
        let mut col_idx: Vec<u32> = Vec::with_capacity(self.triplets.len());
        let mut values: Vec<f32> = Vec::with_capacity(self.triplets.len());
        for r in 0..self.rows {
            let seg = &mut by_row[starts[r] as usize..starts[r + 1] as usize];
            seg.sort_by_key(|&(c, _)| c);
            for &(c, v) in seg.iter() {
                if col_idx.last() == Some(&c) && values.len() > row_ptr[r] as usize {
                    *values.last_mut().expect("merge target exists") += v;
                } else {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr[r + 1] = col_idx.len() as u32;
        }
        CsrMatrix { rows: self.rows, cols: self.cols, row_ptr, col_idx, values }
    }
}

/// A compressed-sparse-row matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// An empty (all-zero) CSR matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, row_ptr: vec![0; rows + 1], col_idx: Vec::new(), values: Vec::new() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(column, value)` pairs of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let start = self.row_ptr[r] as usize;
        let end = self.row_ptr[r + 1] as usize;
        self.col_idx[start..end]
            .iter()
            .zip(&self.values[start..end])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Sum of the values in row `r` (a "row degree" for weight operators).
    pub fn row_sum(&self, r: usize) -> f32 {
        let start = self.row_ptr[r] as usize;
        let end = self.row_ptr[r + 1] as usize;
        self.values[start..end].iter().sum()
    }

    /// Number of stored entries in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        (self.row_ptr[r + 1] - self.row_ptr[r]) as usize
    }

    /// Dense `self × rhs` product.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_dense(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows(), "CsrMatrix::mul_dense: dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols());
        self.mul_dense_into(rhs, &mut out);
        out
    }

    /// Like [`Self::mul_dense`] but writing into a caller-provided output
    /// buffer, allowing the solver loop to reuse allocations.
    pub fn mul_dense_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows(), "mul_dense_into: dimension mismatch");
        assert_eq!(out.shape(), (self.rows, rhs.cols()), "mul_dense_into: bad output shape");
        out.fill(0.0);
        for r in 0..self.rows {
            let start = self.row_ptr[r] as usize;
            let end = self.row_ptr[r + 1] as usize;
            let out_row = out.row_mut(r);
            for k in start..end {
                vector::axpy(self.values[k], rhs.row(self.col_idx[k] as usize), out_row);
            }
        }
    }

    /// Compute rows `row_range` of `self × rhs` into a caller-provided
    /// row-major chunk (`(row_range.len()) × rhs.cols()` floats). Disjoint
    /// ranges write to disjoint chunks, which is what the parallel solver
    /// driver exploits.
    pub fn mul_dense_range_into(
        &self,
        rhs: &Matrix,
        row_range: std::ops::Range<usize>,
        out_chunk: &mut [f32],
    ) {
        let cols = rhs.cols();
        assert_eq!(
            out_chunk.len(),
            row_range.len() * cols,
            "mul_dense_range_into: chunk size mismatch"
        );
        out_chunk.fill(0.0);
        for (local, r) in row_range.enumerate() {
            let start = self.row_ptr[r] as usize;
            let end = self.row_ptr[r + 1] as usize;
            let out_row = &mut out_chunk[local * cols..(local + 1) * cols];
            for k in start..end {
                vector::axpy(self.values[k], rhs.row(self.col_idx[k] as usize), out_row);
            }
        }
    }

    /// Accumulate `out_row += scale * (self[r, :] × rhs)` for a single row.
    pub fn mul_row_into(&self, r: usize, rhs: &Matrix, scale: f32, out_row: &mut [f32]) {
        let start = self.row_ptr[r] as usize;
        let end = self.row_ptr[r + 1] as usize;
        for k in start..end {
            vector::axpy(scale * self.values[k], rhs.row(self.col_idx[k] as usize), out_row);
        }
    }

    /// Issue software prefetches for the `rhs` rows that
    /// [`Self::mul_row_into`] on row `r` will gather.
    ///
    /// The sparse-times-dense product is latency-bound: each stored entry
    /// gathers a dense row at a data-dependent index the hardware
    /// prefetcher cannot predict. Callers that walk rows in order (the
    /// solver kernels) prefetch row `r + 1` while computing row `r`, which
    /// overlaps the gather misses with useful work. A no-op on
    /// architectures without a prefetch intrinsic; never required for
    /// correctness.
    #[inline]
    pub fn prefetch_row(&self, r: usize, rhs: &Matrix) {
        #[cfg(target_arch = "x86_64")]
        {
            let start = self.row_ptr[r] as usize;
            let end = self.row_ptr[r + 1] as usize;
            let row_bytes = rhs.cols() * std::mem::size_of::<f32>();
            for &c in &self.col_idx[start..end] {
                let row = rhs.row(c as usize);
                let base = row.as_ptr() as *const i8;
                let mut off = 0usize;
                while off < row_bytes {
                    // SAFETY: prefetch only hints the cache; the address
                    // stays within (or one line past) the row slice and is
                    // never dereferenced.
                    unsafe {
                        std::arch::x86_64::_mm_prefetch(
                            base.add(off),
                            std::arch::x86_64::_MM_HINT_T0,
                        );
                    }
                    off += 64;
                }
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            let _ = (r, rhs);
        }
    }

    /// Transpose (also CSR).
    pub fn transpose(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.cols, self.rows);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                coo.push(c, r, v);
            }
        }
        coo.to_csr()
    }

    /// Materialize as a dense matrix (for tests and tiny examples only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                m.set(r, c, m.get(r, c) + v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csr() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 1.0);
        coo.push(1, 2, 3.0);
        coo.push(2, 2, 4.0);
        coo.to_csr()
    }

    #[test]
    fn coo_to_csr_preserves_entries() {
        let m = sample_csr();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row(1).collect::<Vec<_>>(), vec![(0, 1.0), (2, 3.0)]);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.5);
        coo.push(1, 1, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.row(0).collect::<Vec<_>>(), vec![(0, 3.5)]);
    }

    #[test]
    fn zero_values_are_dropped() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 0.0);
        assert_eq!(coo.to_csr().nnz(), 0);
    }

    #[test]
    fn empty_rows_have_valid_pointers() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(3, 0, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.row_nnz(0), 0);
        assert_eq!(csr.row_nnz(3), 1);
        assert_eq!(csr.row(2).count(), 0);
    }

    #[test]
    fn mul_dense_matches_dense_matmul() {
        let csr = sample_csr();
        let dense = csr.to_dense();
        let rhs = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let a = csr.mul_dense(&rhs);
        let b = dense.matmul(&rhs);
        assert!(a.max_abs_diff(&b) < 1e-6);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let csr = sample_csr();
        let t = csr.transpose();
        assert!(t.to_dense().max_abs_diff(&csr.to_dense().transpose()) < 1e-6);
    }

    #[test]
    fn row_sum_adds_values() {
        let csr = sample_csr();
        assert_eq!(csr.row_sum(1), 4.0);
        assert_eq!(csr.row_sum(0), 2.0);
    }

    #[test]
    fn mul_row_into_accumulates_scaled() {
        let csr = sample_csr();
        let rhs = Matrix::from_rows(&[vec![1.0], vec![10.0], vec![100.0]]);
        let mut out = vec![5.0];
        csr.mul_row_into(1, &rhs, 2.0, &mut out);
        // row 1 = {0: 1.0, 2: 3.0}; 2*(1*1 + 3*100) = 602
        assert_eq!(out, vec![607.0]);
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = CsrMatrix::zeros(5, 7);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.rows(), 5);
        assert_eq!(z.cols(), 7);
        let rhs = Matrix::zeros(7, 2);
        assert_eq!(z.mul_dense(&rhs).shape(), (5, 2));
    }
}
