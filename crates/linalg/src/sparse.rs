//! Sparse matrices in coordinate (COO) and compressed-sparse-row (CSR) form.
//!
//! The retrofitting operators `(γ^r_ij)`, `(δ^r_ij)` and graph adjacency are
//! extremely sparse (a handful of relations per text value out of tens of
//! thousands), so the solvers assemble them as [`CooMatrix`] triplets and
//! convert once to [`CsrMatrix`] for repeated `CSR × dense` products.

use crate::dense::Matrix;
use crate::vector;

/// A sparse matrix under assembly: unordered `(row, col, value)` triplets.
///
/// Duplicate coordinates are allowed and are summed during conversion to CSR,
/// which matches how the paper's weight matrices superimpose `γ` and `γ̄ᵀ`
/// contributions (Eq. 10).
#[derive(Clone, Debug, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    triplets: Vec<(u32, u32, f32)>,
}

impl CooMatrix {
    /// An empty `rows × cols` COO matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self { rows, cols, triplets: Vec::new() }
    }

    /// Record `m[row, col] += value`.
    ///
    /// # Panics
    /// Panics if the coordinate is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f32) {
        assert!(row < self.rows && col < self.cols, "CooMatrix::push: out of bounds");
        if value != 0.0 {
            self.triplets.push((row as u32, col as u32, value));
        }
    }

    /// Number of recorded triplets (before duplicate merging).
    pub fn nnz_upper_bound(&self) -> usize {
        self.triplets.len()
    }

    /// Convert to CSR, merging duplicate coordinates by summation.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut triplets = self.triplets.clone();
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut row_counts = vec![0u32; self.rows + 1];
        let mut col_idx: Vec<u32> = Vec::with_capacity(triplets.len());
        let mut values: Vec<f32> = Vec::with_capacity(triplets.len());
        let mut last: Option<(u32, u32)> = None;

        for &(r, c, v) in &triplets {
            if last == Some((r, c)) {
                *values.last_mut().expect("merge target exists") += v;
            } else {
                col_idx.push(c);
                values.push(v);
                row_counts[r as usize + 1] += 1;
                last = Some((r, c));
            }
        }
        // Prefix-sum the per-row counts into row pointers.
        for r in 0..self.rows {
            row_counts[r + 1] += row_counts[r];
        }
        CsrMatrix { rows: self.rows, cols: self.cols, row_ptr: row_counts, col_idx, values }
    }
}

/// A compressed-sparse-row matrix of `f32`.
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// An empty (all-zero) CSR matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, row_ptr: vec![0; rows + 1], col_idx: Vec::new(), values: Vec::new() }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// `(column, value)` pairs of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let start = self.row_ptr[r] as usize;
        let end = self.row_ptr[r + 1] as usize;
        self.col_idx[start..end]
            .iter()
            .zip(&self.values[start..end])
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Sum of the values in row `r` (a "row degree" for weight operators).
    pub fn row_sum(&self, r: usize) -> f32 {
        let start = self.row_ptr[r] as usize;
        let end = self.row_ptr[r + 1] as usize;
        self.values[start..end].iter().sum()
    }

    /// Number of stored entries in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        (self.row_ptr[r + 1] - self.row_ptr[r]) as usize
    }

    /// Dense `self × rhs` product.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn mul_dense(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows(), "CsrMatrix::mul_dense: dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols());
        self.mul_dense_into(rhs, &mut out);
        out
    }

    /// Like [`Self::mul_dense`] but writing into a caller-provided output
    /// buffer, allowing the solver loop to reuse allocations.
    pub fn mul_dense_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows(), "mul_dense_into: dimension mismatch");
        assert_eq!(out.shape(), (self.rows, rhs.cols()), "mul_dense_into: bad output shape");
        out.fill(0.0);
        for r in 0..self.rows {
            let start = self.row_ptr[r] as usize;
            let end = self.row_ptr[r + 1] as usize;
            let out_row = out.row_mut(r);
            for k in start..end {
                vector::axpy(self.values[k], rhs.row(self.col_idx[k] as usize), out_row);
            }
        }
    }

    /// Compute rows `row_range` of `self × rhs` into a caller-provided
    /// row-major chunk (`(row_range.len()) × rhs.cols()` floats). Disjoint
    /// ranges write to disjoint chunks, which is what the parallel solver
    /// driver exploits.
    pub fn mul_dense_range_into(
        &self,
        rhs: &Matrix,
        row_range: std::ops::Range<usize>,
        out_chunk: &mut [f32],
    ) {
        let cols = rhs.cols();
        assert_eq!(
            out_chunk.len(),
            row_range.len() * cols,
            "mul_dense_range_into: chunk size mismatch"
        );
        out_chunk.fill(0.0);
        for (local, r) in row_range.enumerate() {
            let start = self.row_ptr[r] as usize;
            let end = self.row_ptr[r + 1] as usize;
            let out_row = &mut out_chunk[local * cols..(local + 1) * cols];
            for k in start..end {
                vector::axpy(self.values[k], rhs.row(self.col_idx[k] as usize), out_row);
            }
        }
    }

    /// Accumulate `out_row += scale * (self[r, :] × rhs)` for a single row.
    pub fn mul_row_into(&self, r: usize, rhs: &Matrix, scale: f32, out_row: &mut [f32]) {
        let start = self.row_ptr[r] as usize;
        let end = self.row_ptr[r + 1] as usize;
        for k in start..end {
            vector::axpy(scale * self.values[k], rhs.row(self.col_idx[k] as usize), out_row);
        }
    }

    /// Transpose (also CSR).
    pub fn transpose(&self) -> CsrMatrix {
        let mut coo = CooMatrix::new(self.cols, self.rows);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                coo.push(c, r, v);
            }
        }
        coo.to_csr()
    }

    /// Materialize as a dense matrix (for tests and tiny examples only).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row(r) {
                m.set(r, c, m.get(r, c) + v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csr() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 1, 2.0);
        coo.push(1, 0, 1.0);
        coo.push(1, 2, 3.0);
        coo.push(2, 2, 4.0);
        coo.to_csr()
    }

    #[test]
    fn coo_to_csr_preserves_entries() {
        let m = sample_csr();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row(1).collect::<Vec<_>>(), vec![(0, 1.0), (2, 3.0)]);
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(0, 0, 2.5);
        coo.push(1, 1, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.row(0).collect::<Vec<_>>(), vec![(0, 3.5)]);
    }

    #[test]
    fn zero_values_are_dropped() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 0.0);
        assert_eq!(coo.to_csr().nnz(), 0);
    }

    #[test]
    fn empty_rows_have_valid_pointers() {
        let mut coo = CooMatrix::new(4, 4);
        coo.push(3, 0, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.row_nnz(0), 0);
        assert_eq!(csr.row_nnz(3), 1);
        assert_eq!(csr.row(2).count(), 0);
    }

    #[test]
    fn mul_dense_matches_dense_matmul() {
        let csr = sample_csr();
        let dense = csr.to_dense();
        let rhs = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let a = csr.mul_dense(&rhs);
        let b = dense.matmul(&rhs);
        assert!(a.max_abs_diff(&b) < 1e-6);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let csr = sample_csr();
        let t = csr.transpose();
        assert!(t.to_dense().max_abs_diff(&csr.to_dense().transpose()) < 1e-6);
    }

    #[test]
    fn row_sum_adds_values() {
        let csr = sample_csr();
        assert_eq!(csr.row_sum(1), 4.0);
        assert_eq!(csr.row_sum(0), 2.0);
    }

    #[test]
    fn mul_row_into_accumulates_scaled() {
        let csr = sample_csr();
        let rhs = Matrix::from_rows(&[vec![1.0], vec![10.0], vec![100.0]]);
        let mut out = vec![5.0];
        csr.mul_row_into(1, &rhs, 2.0, &mut out);
        // row 1 = {0: 1.0, 2: 3.0}; 2*(1*1 + 3*100) = 602
        assert_eq!(out, vec![607.0]);
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = CsrMatrix::zeros(5, 7);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.rows(), 5);
        assert_eq!(z.cols(), 7);
        let rhs = Matrix::zeros(7, 2);
        assert_eq!(z.mul_dense(&rhs).shape(), (5, 2));
    }
}
