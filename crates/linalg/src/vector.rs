//! Free functions over `&[f32]` slices.
//!
//! All functions assume equal-length inputs and panic (in debug builds) when
//! that contract is violated; the retrofitting code always works with
//! fixed-dimension rows so a length mismatch is a programming error, not a
//! recoverable condition.
//!
//! ## Chunked kernels
//!
//! The hot kernels ([`axpy`], [`scale`], [`dot`], [`dist_sq`], and through
//! them [`normalize`]) process [`LANES`] elements per step with a scalar
//! tail, which lets LLVM autovectorize them (the element-wise kernels
//! become plain SIMD maps; the reductions keep [`LANES`] independent
//! accumulators instead of one serial `+` chain).
//!
//! Chunking never changes *what* is computed, only how fast: the
//! element-wise kernels are bit-identical to the obvious one-element loop,
//! and the reductions are bit-identical to a fixed scalar model — element
//! `i` accumulates into lane `i % LANES`, and the lanes are combined by a
//! fixed pairwise tree (`reduce_lanes`). That model depends only on the input
//! data, never on chunk boundaries, so every caller (both solver kernels,
//! `CsrMatrix` products, row normalization) sees one deterministic
//! summation order. `crates/linalg/tests/chunked_kernels.rs` pins the
//! bit-identity against naive scalar reference loops for every length.

/// Elements processed per chunked step (and independent accumulators in the
/// chunked reductions).
pub const LANES: usize = 8;

/// Combine the [`LANES`] partial accumulators of a chunked reduction with a
/// fixed pairwise tree: `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
#[inline]
fn reduce_lanes(l: [f32; LANES]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Dot product of two equal-length slices.
///
/// Summation order is the chunked-lane model (see the module docs): element
/// `i` accumulates into lane `i % LANES`, lanes combine pairwise.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    let mut lanes = [0.0f32; LANES];
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        for j in 0..LANES {
            lanes[j] += ca[j] * cb[j];
        }
    }
    for (j, (x, y)) in ac.remainder().iter().zip(bc.remainder()).enumerate() {
        lanes[j] += x * y;
    }
    reduce_lanes(lanes)
}

/// Squared Euclidean norm.
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    dot(a, a)
}

/// Euclidean norm.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    norm_sq(a).sqrt()
}

/// Squared Euclidean distance between two points.
///
/// Same chunked-lane summation order as [`dot`].
#[inline]
pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dist_sq: length mismatch");
    let mut lanes = [0.0f32; LANES];
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        for j in 0..LANES {
            let d = ca[j] - cb[j];
            lanes[j] += d * d;
        }
    }
    for (j, (x, y)) in ac.remainder().iter().zip(bc.remainder()).enumerate() {
        lanes[j] += (x - y) * (x - y);
    }
    reduce_lanes(lanes)
}

/// Euclidean distance between two points.
#[inline]
pub fn dist(a: &[f32], b: &[f32]) -> f32 {
    dist_sq(a, b).sqrt()
}

/// `y += alpha * x` (the classic axpy kernel).
///
/// Element-wise, so the chunking is purely a speed matter: every element
/// ends up exactly `y[i] + alpha * x[i]`.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    let mut yc = y.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (cy, cx) in (&mut yc).zip(&mut xc) {
        for j in 0..LANES {
            cy[j] += alpha * cx[j];
        }
    }
    for (yi, xi) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yi += alpha * xi;
    }
}

/// `y = alpha * y`.
///
/// Element-wise; bit-identical to the one-element loop.
#[inline]
pub fn scale(alpha: f32, y: &mut [f32]) {
    let mut yc = y.chunks_exact_mut(LANES);
    for cy in &mut yc {
        for j in 0..LANES {
            cy[j] *= alpha;
        }
    }
    for yi in yc.into_remainder() {
        *yi *= alpha;
    }
}

/// Fill a slice with zeros.
#[inline]
pub fn zero(y: &mut [f32]) {
    y.fill(0.0);
}

/// Normalize `y` to unit Euclidean length in place.
///
/// A zero (or numerically tiny) vector is left untouched so that OOV null
/// vectors survive normalization unchanged — the paper's series solver
/// (Eq. 9) divides by the vector length and we mirror its convention that a
/// zero numerator stays zero.
#[inline]
pub fn normalize(y: &mut [f32]) {
    let n = norm(y);
    if n > f32::EPSILON {
        scale(1.0 / n, y);
    }
}

/// Cosine similarity, with the convention that a zero vector has similarity
/// zero to everything.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na <= f32::EPSILON || nb <= f32::EPSILON {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

/// Element-wise mean of a set of equal-length vectors.
///
/// Returns a zero vector of dimension `dim` when `vecs` is empty, matching
/// the paper's treatment of categories with no in-vocabulary member.
pub fn centroid<'a, I>(vecs: I, dim: usize) -> Vec<f32>
where
    I: IntoIterator<Item = &'a [f32]>,
{
    let mut acc = vec![0.0f32; dim];
    let mut count = 0usize;
    for v in vecs {
        debug_assert_eq!(v.len(), dim, "centroid: dimension mismatch");
        axpy(1.0, v, &mut acc);
        count += 1;
    }
    if count > 0 {
        scale(1.0 / count as f32, &mut acc);
    }
    acc
}

/// True when every component differs by at most `tol`.
#[inline]
pub fn approx_eq(a: &[f32], b: &[f32], tol: f32) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 5.0]), 0.0);
    }

    #[test]
    fn dot_matches_hand_computation() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn norm_of_unit_axes() {
        assert_eq!(norm(&[0.0, 1.0, 0.0]), 1.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn dist_is_symmetric() {
        let a = [1.0, 2.0, -1.0];
        let b = [0.5, -2.0, 3.0];
        assert_eq!(dist(&a, &b), dist(&b, &a));
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn normalize_makes_unit_length() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_leaves_zero_vector() {
        let mut v = vec![0.0, 0.0, 0.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn cosine_of_parallel_vectors() {
        assert!((cosine(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_zero_vector_convention() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    #[test]
    fn centroid_of_two_points() {
        let a = [0.0f32, 2.0];
        let b = [2.0f32, 0.0];
        let c = centroid([a.as_slice(), b.as_slice()], 2);
        assert_eq!(c, vec![1.0, 1.0]);
    }

    #[test]
    fn centroid_of_empty_set_is_zero() {
        let c = centroid(std::iter::empty(), 3);
        assert_eq!(c, vec![0.0, 0.0, 0.0]);
    }
}
