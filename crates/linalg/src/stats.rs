//! Summary statistics used by the evaluation harness.
//!
//! The paper reports "runtime ± deviation over 10 repetitions" (Table 2) and
//! box-plot style accuracy distributions (Figs. 8/12/13/14); this module
//! provides the corresponding scalar summaries.

/// Arithmetic mean (`0.0` for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation (`0.0` for fewer than two samples).
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Median (average of the central pair for even lengths; `0.0` when empty).
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in stats input"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Minimum (`0.0` when empty).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min).min(f64::INFINITY).pipe_finite()
}

/// Maximum (`0.0` when empty).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max).pipe_finite()
}

trait PipeFinite {
    fn pipe_finite(self) -> f64;
}
impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

/// A `mean ± dev [min, median, max]` summary of repeated measurements.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub median: f64,
    pub max: f64,
    pub n: usize,
}

impl Summary {
    /// Summarize a sample set.
    pub fn of(xs: &[f64]) -> Self {
        Self {
            mean: mean(xs),
            std_dev: std_dev(xs),
            min: min(xs),
            median: median(xs),
            max: max(xs),
            n: xs.len(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} +/- {:.4} (min {:.4}, median {:.4}, max {:.4}, n={})",
            self.mean, self.std_dev, self.min, self.median, self.max, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn std_dev_of_constant_is_zero() {
        assert_eq!(std_dev(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn std_dev_matches_hand_computation() {
        // Population std-dev of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 2.
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn min_max_bounds() {
        let xs = [3.0, -1.0, 7.0];
        assert_eq!(min(&xs), -1.0);
        assert_eq!(max(&xs), 7.0);
        assert_eq!(min(&[]), 0.0);
        assert_eq!(max(&[]), 0.0);
    }

    #[test]
    fn summary_aggregates_all_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.n, 3);
    }
}
