//! Facade crate re-exporting the whole RETRO workspace.
pub use retro_core as core;
pub use retro_datasets as datasets;
pub use retro_deepwalk as deepwalk;
pub use retro_embed as embed;
pub use retro_eval as eval;
pub use retro_graph as graph;
pub use retro_linalg as linalg;
pub use retro_nn as nn;
pub use retro_store as store;
