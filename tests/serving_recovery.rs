//! Full-system crash recovery for the serving layer
//! (`docs/DURABILITY.md`): a durable store + a persisted embedding
//! generation, killed and restarted.
//!
//! The contract under test:
//!
//! * after a restart, `EmbeddingService::recover` serves rankings
//!   **bit-identical** to the pre-crash generation — for the exact scan
//!   and for the full-probe approximate scan (which must reproduce the
//!   exact ranking bit for bit, crash or no crash);
//! * the recovered session is *live*: writes that landed after the
//!   snapshot are reported stale and the next refresh converges to
//!   exactly the state an uninterrupted service reaches — same solver
//!   path, bit-identical embeddings.
//!
//! Sizes default small so `cargo test` stays quick; CI raises
//! `RETRO_SERVE_STRESS` for a release-mode soak (same gate as
//! `tests/serving.rs`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use retro::core::serve::{EmbeddingService, SearchMode};
use retro::core::{Hyperparameters, RetroConfig};
use retro::embed::EmbeddingSet;
use retro::store::{Database, SharedDatabase, Value};

fn stress_rounds(default: usize) -> usize {
    std::env::var("RETRO_SERVE_STRESS").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new() -> Self {
        let dir = std::env::temp_dir().join(format!(
            "retro_serving_recovery_{}_{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn base() -> EmbeddingSet {
    let tokens: Vec<String> = (0..40).map(|i| format!("tok{i}")).collect();
    let vectors: Vec<Vec<f32>> =
        (0..40).map(|i| (0..8).map(|d| ((i * 7 + d * 3) as f32 * 0.37).sin()).collect()).collect();
    EmbeddingSet::new(tokens, vectors)
}

fn config() -> RetroConfig {
    RetroConfig::default()
        .with_params(Hyperparameters::paper_rn().with_threads(2))
        .with_iterations(3)
}

fn movie_title(id: i64) -> Value {
    Value::from(format!("movie{id} tok{} tok{}", 8 + (id % 16), 24 + (id % 16)))
}

/// Populate a **durable** database under `dir` via the store's normal
/// mutation paths (schema through SQL-equivalent builders, rows through
/// inserts), so the store side of the crash is real too.
fn populate(dir: &std::path::Path, n_movies: usize) -> Database {
    use retro::store::{sql, DataType, TableSchema};
    let mut db = Database::open(dir).unwrap();
    db.create_table(
        TableSchema::builder("persons").pk("id").column("name", DataType::Text).build(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("movies")
            .pk("id")
            .column("title", DataType::Text)
            .fk("director_id", "persons", "id")
            .build(),
    )
    .unwrap();
    for p in 0..4 {
        sql::run(&mut db, &format!("INSERT INTO persons VALUES ({p}, 'tok{p} tok{}')", p + 4))
            .unwrap();
    }
    for m in 0..n_movies as i64 {
        db.insert("movies", vec![Value::Int(m), movie_title(m), Value::Int(m % 4)]).unwrap();
    }
    db
}

fn insert_movie(db: &SharedDatabase, id: i64) {
    db.with_write(|db| {
        db.insert("movies", vec![Value::Int(id), movie_title(id), Value::Int(id % 4)]).map(|_| ())
    })
    .unwrap();
}

fn rankings(service: &EmbeddingService, queries: &[Vec<f32>], k: usize) -> Vec<Vec<(usize, f32)>> {
    let snap = service.snapshot();
    let full_probe = SearchMode::Approx { probes: snap.index().nlist() };
    queries
        .iter()
        .flat_map(|q| [snap.nearest(q, k, SearchMode::Exact), snap.nearest(q, k, full_probe)])
        .collect()
}

#[test]
fn restarted_service_serves_bit_identical_rankings_then_converges() {
    let scratch = ScratchDir::new();
    let n_movies = 8 * stress_rounds(3);
    let embed_path = scratch.0.join("embeddings.rsrv");

    // ---- Before the crash: durable store, served embeddings, both persisted.
    let db = populate(&scratch.0, n_movies);
    let shared = SharedDatabase::new(db);
    let survivor = EmbeddingService::start(shared, base(), config()).unwrap();
    insert_movie(survivor.database(), 900);
    survivor.refresh().unwrap();
    survivor.save_snapshot(&embed_path).unwrap();
    survivor.database().with_write(|db| db.checkpoint()).unwrap();

    let pre = survivor.snapshot();
    let queries: Vec<Vec<f32>> =
        (0..8.min(pre.len())).map(|i| pre.output().embeddings.row(i).to_vec()).collect();
    let expected = rankings(&survivor, &queries, 10);

    // ---- The crash: recover both layers from disk into a fresh process
    // image. (The survivor stays alive only as the reference oracle.)
    let recovered_db = Database::recover(&scratch.0).unwrap();
    assert_eq!(recovered_db.write_version(), survivor.database().write_version());
    let recovered =
        EmbeddingService::recover(SharedDatabase::new(recovered_db), base(), config(), &embed_path)
            .unwrap();

    // Same generation, bit-identical embeddings, bit-identical rankings —
    // exact and full-probe approximate.
    let post = recovered.snapshot();
    assert_eq!(post.generation(), pre.generation());
    assert_eq!(post.write_version(), pre.write_version());
    assert_eq!(
        post.output().embeddings.max_abs_diff(&pre.output().embeddings),
        0.0,
        "recovered embeddings must be bit-identical"
    );
    assert_eq!(rankings(&recovered, &queries, 10), expected);
    assert!(!recovered.out_of_date(), "store and embeddings were persisted together");

    // ---- Convergence: the same writes land on both sides; the recovered
    // session must refresh to exactly what the uninterrupted one reaches.
    let rounds = stress_rounds(3);
    for round in 0..rounds as i64 {
        insert_movie(survivor.database(), 1_000 + round);
        insert_movie(recovered.database(), 1_000 + round);
    }
    assert!(recovered.out_of_date());
    let survivor_gen = survivor.refresh().unwrap();
    let recovered_gen = recovered.refresh().unwrap();
    assert_eq!(survivor_gen, recovered_gen, "generation numbering survives the crash");
    assert_eq!(survivor.last_refresh(), recovered.last_refresh(), "same refresh dispatch");
    assert_eq!(
        recovered
            .snapshot()
            .output()
            .embeddings
            .max_abs_diff(&survivor.snapshot().output().embeddings),
        0.0,
        "post-crash refresh must converge to the uninterrupted result bit for bit"
    );
    let title = movie_title(1_000);
    assert!(recovered.snapshot().vector("movies", "title", title.as_text().unwrap()).is_some());
}

/// Readers keep getting complete, monotone generations across a recovery
/// handoff: pin a pre-crash snapshot, recover, refresh — the pinned Arc
/// still serves its generation untouched.
#[test]
fn pinned_pre_crash_snapshots_survive_recovery_refreshes() {
    let scratch = ScratchDir::new();
    let embed_path = scratch.0.join("embeddings.rsrv");
    let db = populate(&scratch.0, 12);
    let service = EmbeddingService::start(SharedDatabase::new(db), base(), config()).unwrap();
    service.save_snapshot(&embed_path).unwrap();

    let recovered_db = Database::recover(&scratch.0).unwrap();
    let recovered =
        EmbeddingService::recover(SharedDatabase::new(recovered_db), base(), config(), &embed_path)
            .unwrap();
    let pinned = recovered.snapshot();
    let before: Vec<f32> = pinned.output().embeddings.as_slice().to_vec();

    for round in 0..stress_rounds(2) as i64 {
        insert_movie(recovered.database(), 2_000 + round);
        recovered.refresh().unwrap();
    }
    assert_eq!(pinned.generation(), 1);
    assert_eq!(pinned.output().embeddings.as_slice(), &before[..]);
    assert!(recovered.generation() > Arc::clone(&pinned).generation());
}
