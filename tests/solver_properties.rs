//! Property-based tests of the solver invariants, on randomly generated
//! retrofitting problems.

use proptest::prelude::*;
use retro::core::catalog::TextValueCatalog;
use retro::core::hyper::check_convexity;
use retro::core::loss::evaluate_loss;
use retro::core::relations::{RelationGroup, RelationKind};
use retro::core::solver::{solve_mf, solve_rn, solve_rn_parallel, solve_ro, solve_ro_enumerated};
use retro::core::{Hyperparameters, RetrofitProblem};
use retro::embed::EmbeddingSet;
use retro::linalg::vector;

/// Build a random bipartite problem from proptest-chosen edges/vectors.
fn build_problem(
    n_sources: usize,
    n_targets: usize,
    edges: Vec<(usize, usize)>,
    coords: Vec<f32>,
) -> RetrofitProblem {
    let mut catalog = TextValueCatalog::default();
    let ca = catalog.add_category("t", "a");
    let cb = catalog.add_category("t", "b");
    let mut tokens = Vec::new();
    let mut vectors = Vec::new();
    let dim = 3;
    for k in 0..n_sources {
        catalog.intern(ca, &format!("s{k}"));
        tokens.push(format!("s{k}"));
        vectors.push(
            coords[(k * dim) % coords.len().max(1)..]
                .iter()
                .chain(coords.iter().cycle())
                .take(dim)
                .copied()
                .collect(),
        );
    }
    for k in 0..n_targets {
        catalog.intern(cb, &format!("t{k}"));
        tokens.push(format!("t{k}"));
        vectors.push(
            coords[((n_sources + k) * dim) % coords.len().max(1)..]
                .iter()
                .chain(coords.iter().cycle())
                .take(dim)
                .copied()
                .collect(),
        );
    }
    let edge_ids: Vec<(u32, u32)> = edges
        .into_iter()
        .map(|(i, j)| ((i % n_sources) as u32, (n_sources + j % n_targets) as u32))
        .collect();
    let groups =
        vec![RelationGroup::new("t.a~t.b".into(), ca, cb, RelationKind::RowWise, edge_ids)];
    let base = EmbeddingSet::new(tokens, vectors);
    RetrofitProblem::from_parts(catalog, groups, &base)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rn_rows_are_unit_or_zero(
        edges in prop::collection::vec((0usize..6, 0usize..5), 1..12),
        coords in prop::collection::vec(-1.0f32..1.0, 6),
        gamma in 0.5f32..4.0,
        delta in 0.0f32..2.0,
    ) {
        let p = build_problem(6, 5, edges, coords);
        let w = solve_rn(&p, &Hyperparameters::new(1.0, 0.5, gamma, delta), 8);
        for r in 0..w.rows() {
            let norm = vector::norm(w.row(r));
            prop_assert!(norm < 1.0 + 1e-4, "row {r} norm {norm}");
            prop_assert!(norm < 1e-4 || (norm - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn ro_reduces_loss_under_convex_configs(
        edges in prop::collection::vec((0usize..5, 0usize..4), 1..10),
        coords in prop::collection::vec(-1.0f32..1.0, 6),
    ) {
        let p = build_problem(5, 4, edges, coords);
        let params = Hyperparameters::new(6.0, 0.5, 1.0, 0.2);
        let check = check_convexity(&p.groups, &p.relation_counts, &params, p.len());
        prop_assume!(check.convex);
        let before = evaluate_loss(&p, &params, &p.w0).total();
        let w = solve_ro(&p, &params, 15);
        let after = evaluate_loss(&p, &params, &w).total();
        prop_assert!(after <= before + 1e-4, "loss rose: {before} -> {after}");
    }

    #[test]
    fn enumerated_ro_equals_optimized_ro(
        edges in prop::collection::vec((0usize..5, 0usize..4), 1..10),
        coords in prop::collection::vec(-1.0f32..1.0, 6),
        delta in 0.0f32..2.0,
    ) {
        let p = build_problem(5, 4, edges, coords);
        let params = Hyperparameters::new(1.0, 0.0, 2.0, delta);
        let fast = solve_ro(&p, &params, 8);
        let slow = solve_ro_enumerated(&p, &params, 8);
        prop_assert!(fast.max_abs_diff(&slow) < 1e-3,
            "divergence {}", fast.max_abs_diff(&slow));
    }

    #[test]
    fn parallel_rn_equals_serial_rn(
        edges in prop::collection::vec((0usize..8, 0usize..6), 1..16),
        coords in prop::collection::vec(-1.0f32..1.0, 6),
        threads in 2usize..5,
    ) {
        let p = build_problem(8, 6, edges, coords);
        let params = Hyperparameters::paper_rn();
        let serial = solve_rn(&p, &params, 6);
        let parallel = solve_rn_parallel(&p, &params, 6, threads);
        // Exact: both run the shared `RnKernel`.
        prop_assert!(serial.max_abs_diff(&parallel) == 0.0);
    }

    #[test]
    fn mf_stays_within_the_convex_hull_bound(
        edges in prop::collection::vec((0usize..5, 0usize..4), 1..10),
        coords in prop::collection::vec(-1.0f32..1.0, 6),
    ) {
        // Every MF vector is an average of originals and neighbours, so the
        // max absolute coordinate can never exceed the initial max.
        let p = build_problem(5, 4, edges, coords);
        let bound = p.w0.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        let w = solve_mf(&p, 20);
        let out = w.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs()));
        prop_assert!(out <= bound + 1e-5, "escaped hull: {out} > {bound}");
    }

    #[test]
    fn ro_loss_is_non_increasing_across_iterations(
        edges in prop::collection::vec((0usize..6, 0usize..5), 1..12),
        coords in prop::collection::vec(-1.0f32..1.0, 6),
        alpha in 2.0f32..8.0,
        beta in 0.0f32..1.0,
        gamma in 0.1f32..2.0,
        delta in 0.0f32..0.5,
    ) {
        // Under a convex configuration (Eq. 24), each extra RO iteration is
        // a further step of the same fixed-point descent, so Ψ evaluated at
        // the k-iteration output is non-increasing in k. RN is deliberately
        // not asserted here: its row normalization optimizes the §4.2
        // normalized series, not Ψ, and random bipartite problems routinely
        // produce Ψ increases (and even non-convergent oscillations) for it.
        let p = build_problem(6, 5, edges, coords);
        let params = Hyperparameters::new(alpha, beta, gamma, delta);
        let check = check_convexity(&p.groups, &p.relation_counts, &params, p.len());
        prop_assume!(check.convex);
        let mut prev = f64::INFINITY;
        for iters in [1usize, 2, 4, 8, 15] {
            let w = solve_ro(&p, &params, iters);
            let loss = evaluate_loss(&p, &params, &w).total();
            prop_assert!(
                loss <= prev + 1e-4,
                "iters {iters}: loss rose {prev} -> {loss}"
            );
            prev = loss;
        }
    }

    #[test]
    fn rn_iterates_are_normalized_and_finite_at_every_prefix(
        edges in prop::collection::vec((0usize..6, 0usize..5), 1..12),
        coords in prop::collection::vec(-1.0f32..1.0, 6),
        gamma in 0.5f32..4.0,
        delta in 0.0f32..2.0,
    ) {
        // The guarantee RN does give (§4.2): normalization bounds the series
        // at every iteration count, not just the final one.
        let p = build_problem(6, 5, edges, coords);
        let params = Hyperparameters::new(1.0, 0.5, gamma, delta);
        for iters in [1usize, 2, 4, 8] {
            let w = solve_rn(&p, &params, iters);
            for r in 0..w.rows() {
                let norm = vector::norm(w.row(r));
                prop_assert!(norm.is_finite(), "iters {iters} row {r}: non-finite norm");
                prop_assert!(
                    norm < 1e-4 || (norm - 1.0).abs() < 1e-4,
                    "iters {iters} row {r}: norm {norm}"
                );
            }
        }
    }

    #[test]
    fn solvers_are_finite_for_wild_parameters(
        alpha in 0.0f32..5.0,
        beta in 0.0f32..5.0,
        gamma in 0.0f32..10.0,
        delta in 0.0f32..10.0,
        edges in prop::collection::vec((0usize..4, 0usize..4), 1..8),
        coords in prop::collection::vec(-1.0f32..1.0, 6),
    ) {
        let p = build_problem(4, 4, edges, coords);
        let params = Hyperparameters::new(alpha, beta, gamma, delta);
        for w in [solve_ro(&p, &params, 6), solve_rn(&p, &params, 6)] {
            prop_assert!(w.as_slice().iter().all(|v| v.is_finite()));
        }
    }
}
