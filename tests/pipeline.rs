//! End-to-end pipeline integration tests: database → extraction →
//! retrofitting → downstream signal, across crates.

use retro::core::{Retro, RetroConfig, Solver};
use retro::datasets::{GooglePlayConfig, GooglePlayDataset, TmdbConfig, TmdbDataset};
use retro::eval::{EmbeddingKind, EmbeddingSuite, SuiteConfig};
use retro::linalg::vector;

fn tmdb() -> TmdbDataset {
    TmdbDataset::generate(TmdbConfig { n_movies: 120, dim: 32, ..TmdbConfig::default() })
}

#[test]
fn retrofit_covers_every_text_value() {
    let data = tmdb();
    let out = Retro::new(RetroConfig::default()).retrofit(&data.db, &data.base).unwrap();
    assert_eq!(out.embeddings.rows(), out.catalog.len());
    assert_eq!(out.embeddings.rows(), data.db.unique_text_value_count());
    // Every learned vector is finite.
    assert!(out.embeddings.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn rn_titles_align_with_their_language_better_than_pv() {
    let data = tmdb();
    let suite = EmbeddingSuite::build(
        &data.db,
        &data.base,
        &SuiteConfig::default().skip_column("movies", "original_language"),
        &[EmbeddingKind::Pv, EmbeddingKind::Rn],
    );
    // kNN language probe: does the title embedding sit closest to the right
    // language-name embedding?
    let knn_accuracy = |kind: EmbeddingKind| {
        let m = suite.matrix(kind);
        let lang_ids: Vec<usize> = retro::datasets::tmdb::LANGUAGES
            .iter()
            .map(|l| suite.catalog.lookup("languages", "name", l).unwrap())
            .collect();
        let mut correct = 0;
        for (i, title) in data.movie_titles.iter().enumerate() {
            let tid = suite.catalog.lookup("movies", "title", title).unwrap();
            let best = (0..lang_ids.len())
                .max_by(|&a, &b| {
                    vector::cosine(m.row(tid), m.row(lang_ids[a]))
                        .partial_cmp(&vector::cosine(m.row(tid), m.row(lang_ids[b])))
                        .unwrap()
                })
                .unwrap();
            if retro::datasets::tmdb::LANGUAGES[best] == data.movie_language[i] {
                correct += 1;
            }
        }
        correct as f64 / data.movie_titles.len() as f64
    };
    let pv = knn_accuracy(EmbeddingKind::Pv);
    let rn = knn_accuracy(EmbeddingKind::Rn);
    assert!(rn > pv + 0.15, "RN {rn} must clearly beat PV {pv}");
}

#[test]
fn solvers_agree_on_problem_but_not_on_solution() {
    let data = tmdb();
    let rn = Retro::new(RetroConfig::default()).retrofit(&data.db, &data.base).unwrap();
    let ro = Retro::new(RetroConfig::default().with_solver(Solver::Ro))
        .retrofit(&data.db, &data.base)
        .unwrap();
    assert_eq!(rn.catalog.len(), ro.catalog.len());
    assert_eq!(rn.problem.groups.len(), ro.problem.groups.len());
    assert!(rn.embeddings.max_abs_diff(&ro.embeddings) > 1e-3);
}

#[test]
fn relation_ablation_removes_edges_but_keeps_values() {
    let data = tmdb();
    let full = Retro::new(RetroConfig::default()).retrofit(&data.db, &data.base).unwrap();
    let ablated = Retro::new(RetroConfig::default().skip_relation("genres.name"))
        .retrofit(&data.db, &data.base)
        .unwrap();
    assert_eq!(full.catalog.len(), ablated.catalog.len());
    assert!(ablated.problem.groups.len() < full.problem.groups.len());
    assert!(ablated.problem.groups.iter().all(|g| !g.name.contains("genres.name")));
}

#[test]
fn suite_concatenation_has_consistent_ids() {
    let data = TmdbDataset::generate(TmdbConfig { n_movies: 60, dim: 16, ..TmdbConfig::default() });
    let suite = EmbeddingSuite::build(
        &data.db,
        &data.base,
        &SuiteConfig::default(),
        &[EmbeddingKind::Rn, EmbeddingKind::Dw, EmbeddingKind::RnDw],
    );
    let n = suite.catalog.len();
    let rn = suite.matrix(EmbeddingKind::Rn);
    let dw = suite.matrix(EmbeddingKind::Dw);
    let combo = suite.matrix(EmbeddingKind::RnDw);
    assert_eq!(combo.rows(), n);
    assert_eq!(combo.cols(), rn.cols() + dw.cols());
    // The combo's left block is the (normalized) RN vector: same direction.
    for id in (0..n).step_by(7) {
        let left = &combo.row(id)[..rn.cols()];
        let cos = vector::cosine(left, rn.row(id));
        if vector::norm(rn.row(id)) > 1e-3 {
            assert!(cos > 0.999, "id {id}: cos {cos}");
        }
    }
}

#[test]
fn gplay_pipeline_reaches_category_signal() {
    let data = GooglePlayDataset::generate(GooglePlayConfig {
        n_apps: 120,
        dim: 48,
        ..GooglePlayConfig::default()
    });
    let suite = EmbeddingSuite::build(
        &data.db,
        &data.base,
        &SuiteConfig::default().skip_column("categories", "name").skip_column("genres", "name"),
        &[EmbeddingKind::Pv, EmbeddingKind::Rn],
    );
    // Apps of the same category should be more similar under RN than PV
    // (reviews pull them together).
    let mean_same_cat = |kind: EmbeddingKind| {
        let m = suite.matrix(kind);
        let mut same = 0.0f32;
        let mut diff = 0.0f32;
        let mut n_same = 0;
        let mut n_diff = 0;
        for a in 0..data.app_names.len() {
            for b in (a + 1)..data.app_names.len() {
                let ia = suite.catalog.lookup("apps", "name", &data.app_names[a]).unwrap();
                let ib = suite.catalog.lookup("apps", "name", &data.app_names[b]).unwrap();
                let cos = vector::cosine(m.row(ia), m.row(ib));
                if data.app_category[a] == data.app_category[b] {
                    same += cos;
                    n_same += 1;
                } else {
                    diff += cos;
                    n_diff += 1;
                }
            }
        }
        (same / n_same.max(1) as f32) - (diff / n_diff.max(1) as f32)
    };
    let pv_margin = mean_same_cat(EmbeddingKind::Pv);
    let rn_margin = mean_same_cat(EmbeddingKind::Rn);
    assert!(rn_margin > pv_margin, "RN category margin {rn_margin} must exceed PV {pv_margin}");
}
