//! Determinism suite for the parallel RO **and RN** solvers.
//!
//! The contract (see `retro_core::solver::parallel`): each solver's
//! parallel path shares one kernel with its sequential path (`RoKernel`,
//! `RnKernel`), so
//!
//! * `solve_*_parallel(.., 1)` equals the sequential entry point
//!   **exactly** (bit-for-bit; `threads = 1` runs the same phases inline),
//!   and
//! * N-thread results are exactly equal for every N, because the group and
//!   row partitions never reorder the floating-point operations that
//!   produce any given centroid or row.
//!
//! Checked across multiple seeds and both synthetic datasets, per-iteration
//! and end-to-end, for cold and seeded warm starts, plus through the
//! high-level `Retro` API's thread knob.

use retro::core::solver::{
    solve_rn, solve_rn_parallel, solve_rn_seeded, solve_rn_seeded_parallel, solve_ro,
    solve_ro_parallel,
};
use retro::core::{Hyperparameters, Retro, RetroConfig, RetrofitProblem, Solver};
use retro::datasets::{GooglePlayConfig, GooglePlayDataset, TmdbConfig, TmdbDataset};

fn tmdb_problem(seed: u64) -> RetrofitProblem {
    let data =
        TmdbDataset::generate(TmdbConfig { n_movies: 200, dim: 16, seed, ..TmdbConfig::default() });
    RetrofitProblem::build(&data.db, &data.base, &[], &[])
}

fn gplay_problem(seed: u64) -> RetrofitProblem {
    let data = GooglePlayDataset::generate(GooglePlayConfig {
        n_apps: 150,
        dim: 16,
        seed,
        ..GooglePlayConfig::default()
    });
    RetrofitProblem::build(&data.db, &data.base, &[], &[])
}

#[test]
fn one_thread_equals_sequential_exactly() {
    for seed in [7u64, 99, 1234] {
        let p = tmdb_problem(seed);
        let params = Hyperparameters::paper_ro();
        let sequential = solve_ro(&p, &params, 10);
        let one_thread = solve_ro_parallel(&p, &params, 10, 1);
        assert_eq!(
            sequential.max_abs_diff(&one_thread),
            0.0,
            "seed {seed}: 1-thread RO must be bit-identical to sequential"
        );
    }
}

#[test]
fn n_threads_match_sequential_exactly() {
    for seed in [7u64, 99] {
        let p = tmdb_problem(seed);
        let params = Hyperparameters::paper_ro();
        let sequential = solve_ro(&p, &params, 10);
        for threads in [2usize, 3, 4, 8] {
            let parallel = solve_ro_parallel(&p, &params, 10, threads);
            assert_eq!(
                sequential.max_abs_diff(&parallel),
                0.0,
                "seed {seed}, RO {threads} threads diverged from sequential"
            );
        }
    }
}

#[test]
fn per_iteration_states_match_bit_for_bit() {
    // Equality of the final matrix could in principle hide compensating
    // divergence; compare every iteration prefix.
    let p = gplay_problem(13);
    let params = Hyperparameters::paper_ro();
    for iterations in 1..=6 {
        let sequential = solve_ro(&p, &params, iterations);
        let parallel = solve_ro_parallel(&p, &params, iterations, 4);
        assert_eq!(sequential.max_abs_diff(&parallel), 0.0, "iteration {iterations} diverged");
    }
}

#[test]
fn gplay_matches_across_seeds_and_thread_counts() {
    for seed in [13u64, 77] {
        let p = gplay_problem(seed);
        let params = Hyperparameters::paper_ro();
        let sequential = solve_ro(&p, &params, 10);
        for threads in [1usize, 2, 6] {
            let parallel = solve_ro_parallel(&p, &params, 10, threads);
            assert_eq!(sequential.max_abs_diff(&parallel), 0.0, "seed {seed}, threads {threads}");
        }
    }
}

#[test]
fn rn_parallel_is_bit_identical_for_every_thread_count() {
    // Since RN runs through the shared `RnKernel`, parity is exact — no
    // epsilon — for every thread count, like RO.
    for seed in [7u64, 99] {
        let p = tmdb_problem(seed);
        let params = Hyperparameters::paper_rn();
        let sequential = solve_rn(&p, &params, 10);
        for threads in [1usize, 2, 3, 8] {
            let parallel = solve_rn_parallel(&p, &params, 10, threads);
            assert_eq!(
                sequential.max_abs_diff(&parallel),
                0.0,
                "seed {seed}, RN {threads} threads diverged from sequential"
            );
        }
    }
}

#[test]
fn rn_one_thread_inline_matches_serial_per_iteration() {
    // `threads = 1` runs the kernel's phases inline on the calling thread —
    // the same code path the sequential entry point uses. Compare every
    // iteration prefix so compensating divergence cannot hide.
    let p = gplay_problem(13);
    let params = Hyperparameters::paper_rn();
    for iterations in 1..=6 {
        let sequential = solve_rn(&p, &params, iterations);
        let inline = solve_rn_parallel(&p, &params, iterations, 1);
        assert_eq!(sequential.max_abs_diff(&inline), 0.0, "iteration {iterations} diverged");
        let parallel = solve_rn_parallel(&p, &params, iterations, 4);
        assert_eq!(
            sequential.max_abs_diff(&parallel),
            0.0,
            "iteration {iterations} diverged (4 threads)"
        );
    }
}

#[test]
fn rn_seeded_warm_starts_are_bit_identical() {
    let p = tmdb_problem(99);
    let params = Hyperparameters::paper_rn();
    let warm = solve_rn(&p, &params, 4);
    let sequential = solve_rn_seeded(&p, &params, 6, Some(&warm));
    for threads in [1usize, 2, 3, 8] {
        let parallel = solve_rn_seeded_parallel(&p, &params, 6, Some(&warm), threads);
        assert_eq!(
            sequential.max_abs_diff(&parallel),
            0.0,
            "seeded RN {threads} threads diverged from sequential"
        );
    }
}

#[test]
fn retro_api_thread_knob_is_output_invariant() {
    let data =
        TmdbDataset::generate(TmdbConfig { n_movies: 120, dim: 16, ..TmdbConfig::default() });
    for solver in [Solver::Ro, Solver::Rn] {
        let sequential = Retro::new(RetroConfig::default().with_solver(solver))
            .retrofit(&data.db, &data.base)
            .unwrap();
        let mut config = RetroConfig::default().with_solver(solver);
        config.params = config.params.with_threads(4);
        let parallel = Retro::new(config).retrofit(&data.db, &data.base).unwrap();
        assert_eq!(
            sequential.embeddings.max_abs_diff(&parallel.embeddings),
            0.0,
            "{solver:?} output changed under the thread knob"
        );
    }
}
