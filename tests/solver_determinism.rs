//! Determinism suite for the parallel RO solver.
//!
//! The contract (see `retro_core::solver::parallel`): the parallel RO path
//! shares one row-partitioned kernel with the sequential path, so
//!
//! * `solve_ro_parallel(.., 1)` equals sequential `solve_ro` **exactly**
//!   (bit-for-bit), and
//! * N-thread results match within 1e-9 for every N — in fact exactly,
//!   because row partitioning never reorders the floating-point operations
//!   that produce any given row.
//!
//! Checked across multiple seeds and both synthetic datasets, per-iteration
//! and end-to-end, plus through the high-level `Retro` API's thread knob.

use retro::core::solver::{solve_rn, solve_rn_parallel, solve_ro, solve_ro_parallel};
use retro::core::{Hyperparameters, Retro, RetroConfig, RetrofitProblem, Solver};
use retro::datasets::{GooglePlayConfig, GooglePlayDataset, TmdbConfig, TmdbDataset};

fn tmdb_problem(seed: u64) -> RetrofitProblem {
    let data =
        TmdbDataset::generate(TmdbConfig { n_movies: 200, dim: 16, seed, ..TmdbConfig::default() });
    RetrofitProblem::build(&data.db, &data.base, &[], &[])
}

fn gplay_problem(seed: u64) -> RetrofitProblem {
    let data = GooglePlayDataset::generate(GooglePlayConfig {
        n_apps: 150,
        dim: 16,
        seed,
        ..GooglePlayConfig::default()
    });
    RetrofitProblem::build(&data.db, &data.base, &[], &[])
}

#[test]
fn one_thread_equals_sequential_exactly() {
    for seed in [7u64, 99, 1234] {
        let p = tmdb_problem(seed);
        let params = Hyperparameters::paper_ro();
        let sequential = solve_ro(&p, &params, 10);
        let one_thread = solve_ro_parallel(&p, &params, 10, 1);
        assert_eq!(
            sequential.max_abs_diff(&one_thread),
            0.0,
            "seed {seed}: 1-thread RO must be bit-identical to sequential"
        );
    }
}

#[test]
fn n_threads_match_sequential_within_tolerance() {
    for seed in [7u64, 99] {
        let p = tmdb_problem(seed);
        let params = Hyperparameters::paper_ro();
        let sequential = solve_ro(&p, &params, 10);
        for threads in [2usize, 3, 4, 8] {
            let parallel = solve_ro_parallel(&p, &params, 10, threads);
            let diff = sequential.max_abs_diff(&parallel) as f64;
            assert!(diff <= 1e-9, "seed {seed}, {threads} threads: diff {diff} exceeds 1e-9");
        }
    }
}

#[test]
fn per_iteration_states_match_bit_for_bit() {
    // Equality of the final matrix could in principle hide compensating
    // divergence; compare every iteration prefix.
    let p = gplay_problem(13);
    let params = Hyperparameters::paper_ro();
    for iterations in 1..=6 {
        let sequential = solve_ro(&p, &params, iterations);
        let parallel = solve_ro_parallel(&p, &params, iterations, 4);
        assert_eq!(sequential.max_abs_diff(&parallel), 0.0, "iteration {iterations} diverged");
    }
}

#[test]
fn gplay_matches_across_seeds_and_thread_counts() {
    for seed in [13u64, 77] {
        let p = gplay_problem(seed);
        let params = Hyperparameters::paper_ro();
        let sequential = solve_ro(&p, &params, 10);
        for threads in [1usize, 2, 6] {
            let parallel = solve_ro_parallel(&p, &params, 10, threads);
            assert_eq!(sequential.max_abs_diff(&parallel), 0.0, "seed {seed}, threads {threads}");
        }
    }
}

#[test]
fn rn_parallel_keeps_the_same_contract() {
    // RN predates this suite but shares the contract; pin it here so a
    // future regression in either solver fails the same gate.
    let p = tmdb_problem(7);
    let params = Hyperparameters::paper_rn();
    let sequential = solve_rn(&p, &params, 10);
    for threads in [2usize, 4] {
        let parallel = solve_rn_parallel(&p, &params, 10, threads);
        let diff = sequential.max_abs_diff(&parallel) as f64;
        assert!(diff <= 1e-9, "RN {threads} threads: diff {diff}");
    }
}

#[test]
fn retro_api_thread_knob_is_output_invariant() {
    let data =
        TmdbDataset::generate(TmdbConfig { n_movies: 120, dim: 16, ..TmdbConfig::default() });
    for solver in [Solver::Ro, Solver::Rn] {
        let sequential = Retro::new(RetroConfig::default().with_solver(solver))
            .retrofit(&data.db, &data.base)
            .unwrap();
        let mut config = RetroConfig::default().with_solver(solver);
        config.params = config.params.with_threads(4);
        let parallel = Retro::new(config).retrofit(&data.db, &data.base).unwrap();
        assert_eq!(
            sequential.embeddings.max_abs_diff(&parallel.embeddings),
            0.0,
            "{solver:?} output changed under the thread knob"
        );
    }
}
