//! Fault injection against the durability files (`docs/DURABILITY.md`).
//!
//! The torn-tail contract under test, byte by byte:
//!
//! * truncating `wal.log` at **any** byte boundary recovers cleanly to the
//!   state at the last fully-intact record — never a panic, never a
//!   half-applied mutation;
//! * flipping **any** byte of the log fails that record's checksum and
//!   recovery stops cleanly at the record before it (a crash can leave
//!   arbitrary garbage in the tail; unacknowledged data is discardable);
//! * a zero-filled tail (preallocated-but-unwritten pages) reads as a
//!   clean end of log;
//! * structural damage that checksums *cannot* explain away — a sequence
//!   gap, a checksummed record that fails to decode, a corrupt or
//!   truncated snapshot — is a typed [`StoreError::Corruption`], because
//!   silently dropping acknowledged committed data would be data loss.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use retro::store::{
    crc32, DataType, Database, StoreError, TableSchema, Value, SNAPSHOT_FILE, WAL_FILE,
};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new() -> Self {
        let dir = std::env::temp_dir().join(format!(
            "retro_wal_faults_{}_{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
    fn wal(&self) -> PathBuf {
        self.0.join(WAL_FILE)
    }
    fn snapshot(&self) -> PathBuf {
        self.0.join(SNAPSHOT_FILE)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Build a durable database with a known mutation sequence. Returns the
/// WAL byte offset after each committed record together with an ephemeral
/// clone of the state at that point — the expected recovery result for any
/// damage landing in the following record.
fn build(dir: &Path) -> Vec<(u64, Database)> {
    let mut db = Database::open(dir).unwrap();
    let mut boundaries = Vec::new();
    let wal = dir.join(WAL_FILE);
    let mut mark = |db: &Database| {
        let len = std::fs::metadata(&wal).unwrap().len();
        boundaries_push(&mut boundaries, len, db.clone());
    };

    db.create_table(
        TableSchema::builder("parents").pk("id").column("name", DataType::Text).build(),
    )
    .unwrap();
    mark(&db);
    db.create_table(
        TableSchema::builder("children")
            .pk("id")
            .column("label", DataType::Text)
            .fk("parent_id", "parents", "id")
            .build(),
    )
    .unwrap();
    mark(&db);
    for pk in 0..3 {
        db.insert("parents", vec![Value::Int(pk), Value::from(format!("p{pk}"))]).unwrap();
        mark(&db);
    }
    db.insert("children", vec![Value::Int(10), Value::from("c"), Value::Int(1)]).unwrap();
    mark(&db);
    db.update_rows("parents", &[(0, 1, Value::from("renamed"))]).unwrap();
    mark(&db);
    db.delete_rows("children", &[0]).unwrap();
    mark(&db);
    boundaries
}

fn boundaries_push(boundaries: &mut Vec<(u64, Database)>, len: u64, db: Database) {
    boundaries.push((len, db));
}

fn assert_state_eq(got: &Database, want: &Database, context: &str) {
    assert_eq!(got.table_names(), want.table_names(), "{context}");
    assert_eq!(got.write_version(), want.write_version(), "{context}");
    for table in want.table_names() {
        assert_eq!(
            got.table(table).unwrap().rows(),
            want.table(table).unwrap().rows(),
            "{context}: rows of {table}"
        );
        assert_eq!(got.table_version(table), want.table_version(table), "{context}");
    }
}

/// The expected recovery state when everything from byte `pos` on is
/// untrustworthy: the last boundary at or below `pos`.
fn expected_at<'a>(boundaries: &'a [(u64, Database)], pos: u64) -> Option<&'a Database> {
    boundaries.iter().rev().find(|(len, _)| *len <= pos).map(|(_, db)| db)
}

#[test]
fn truncation_at_every_byte_recovers_the_intact_prefix() {
    let scratch = ScratchDir::new();
    let boundaries = build(&scratch.0);
    let original = std::fs::read(scratch.wal()).unwrap();
    assert_eq!(boundaries.last().unwrap().0, original.len() as u64);

    for cut in 0..=original.len() {
        std::fs::write(scratch.wal(), &original[..cut]).unwrap();
        let recovered = Database::recover(&scratch.0)
            .unwrap_or_else(|err| panic!("truncation at {cut} must recover cleanly: {err}"));
        match expected_at(&boundaries, cut as u64) {
            Some(want) => assert_state_eq(&recovered, want, &format!("cut at byte {cut}")),
            None => assert_eq!(recovered.table_names().len(), 0, "cut at byte {cut}"),
        }
    }
}

#[test]
fn bit_flips_at_every_byte_recover_the_prefix_before_the_damage() {
    let scratch = ScratchDir::new();
    let boundaries = build(&scratch.0);
    let original = std::fs::read(scratch.wal()).unwrap();

    for pos in 0..original.len() {
        let mut damaged = original.clone();
        damaged[pos] ^= 0x55;
        std::fs::write(scratch.wal(), &damaged).unwrap();
        let recovered = Database::recover(&scratch.0)
            .unwrap_or_else(|err| panic!("bit flip at {pos} must recover cleanly: {err}"));
        // The record containing byte `pos` fails its checksum; everything
        // before it is intact. (A flipped length prefix may also misalign
        // all later framing — either way the intact prefix survives.)
        match expected_at(&boundaries, pos as u64) {
            Some(want) => assert_state_eq(&recovered, want, &format!("flip at byte {pos}")),
            None => assert_eq!(recovered.table_names().len(), 0, "flip at byte {pos}"),
        }
    }
}

#[test]
fn zero_filled_tail_is_a_clean_end_of_log() {
    let scratch = ScratchDir::new();
    let boundaries = build(&scratch.0);
    let mut bytes = std::fs::read(scratch.wal()).unwrap();
    bytes.extend_from_slice(&[0u8; 256]);
    std::fs::write(scratch.wal(), &bytes).unwrap();
    let recovered = Database::recover(&scratch.0).unwrap();
    assert_state_eq(&recovered, &boundaries.last().unwrap().1, "zero-filled tail");
}

#[test]
fn a_missing_middle_record_is_a_sequence_gap_not_silent_loss() {
    let scratch = ScratchDir::new();
    let boundaries = build(&scratch.0);
    let original = std::fs::read(scratch.wal()).unwrap();

    // Splice record 3 out entirely: records 1–2 replay, then the next
    // frame checksums fine but carries sequence 4 — acknowledged record 3
    // is *gone*, which no torn-tail story explains.
    let start = boundaries[1].0 as usize;
    let end = boundaries[2].0 as usize;
    let mut spliced = original[..start].to_vec();
    spliced.extend_from_slice(&original[end..]);
    std::fs::write(scratch.wal(), &spliced).unwrap();
    match Database::recover(&scratch.0) {
        Err(StoreError::Corruption(msg)) => {
            assert!(msg.contains("sequence"), "unexpected message: {msg}")
        }
        other => panic!("sequence gap must be typed corruption, got {other:?}"),
    }
}

#[test]
fn a_checksummed_record_that_fails_to_decode_is_corruption() {
    let scratch = ScratchDir::new();
    let boundaries = build(&scratch.0);
    let mut bytes = std::fs::read(scratch.wal()).unwrap();

    // Craft a frame that passes its CRC but carries an unknown kind tag:
    // valid checksum + undecodable payload means the log itself is
    // damaged, not torn.
    let next_seq = (boundaries.len() + 1) as u64;
    let mut payload = next_seq.to_le_bytes().to_vec();
    payload.push(99); // no such WalOp kind
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    bytes.extend_from_slice(&payload);
    std::fs::write(scratch.wal(), &bytes).unwrap();
    match Database::recover(&scratch.0) {
        Err(StoreError::Corruption(_)) => {}
        other => panic!("undecodable checksummed record must be corruption, got {other:?}"),
    }
}

#[test]
fn snapshot_damage_is_typed_corruption() {
    let scratch = ScratchDir::new();
    let mut db = Database::open(&scratch.0).unwrap();
    db.create_table(
        TableSchema::builder("parents").pk("id").column("name", DataType::Text).build(),
    )
    .unwrap();
    db.insert("parents", vec![Value::Int(1), Value::from("a")]).unwrap();
    db.checkpoint().unwrap();
    db.insert("parents", vec![Value::Int(2), Value::from("b")]).unwrap();
    drop(db);
    let pristine = std::fs::read(scratch.snapshot()).unwrap();

    // Flip one byte anywhere in the snapshot: recovery must fail typed —
    // the snapshot is the *base* state, there is no safe prefix to fall
    // back to.
    for pos in [0usize, 4, 8, 12, pristine.len() / 2, pristine.len() - 1] {
        let mut damaged = pristine.clone();
        damaged[pos] ^= 0x01;
        std::fs::write(scratch.snapshot(), &damaged).unwrap();
        match Database::recover(&scratch.0) {
            Err(StoreError::Corruption(_)) => {}
            other => panic!("snapshot flip at {pos} must be corruption, got {other:?}"),
        }
    }

    // Truncated snapshot: same.
    std::fs::write(scratch.snapshot(), &pristine[..pristine.len() - 5]).unwrap();
    assert!(matches!(Database::recover(&scratch.0), Err(StoreError::Corruption(_))));

    // Deleted snapshot with a post-checkpoint WAL: the log starts past
    // sequence 1, which is a gap — the base state is missing, and that is
    // corruption, not an empty database.
    std::fs::remove_file(scratch.snapshot()).unwrap();
    assert!(matches!(Database::recover(&scratch.0), Err(StoreError::Corruption(_))));

    // Restoring the pristine snapshot heals everything.
    std::fs::write(scratch.snapshot(), &pristine).unwrap();
    let recovered = Database::recover(&scratch.0).unwrap();
    assert_eq!(recovered.table("parents").unwrap().len(), 2);
}
