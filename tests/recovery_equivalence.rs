//! Crash-recovery equivalence harness for the `retro_store` durability
//! subsystem (`docs/DURABILITY.md`).
//!
//! The contract under test: for a randomized DML sequence against a
//! durable database, killing the process after commit `N` and running
//! `Database::recover` reproduces the live in-memory state **exactly** at
//! every kill point `N` — same rows, same PK indexes, same
//! `write_version`, same per-table versions, and the same `changes_since`
//! history (so a recovered serving layer sees the identical change log a
//! surviving one would have). "Killing" here is simply recovering from the
//! on-disk files while the live database keeps running: the WAL is flushed
//! before every commit returns, so the files are what a real crash would
//! leave behind.
//!
//! A second database applies the same sequence ephemerally (no WAL): the
//! durability layer must not change any observable semantics — same
//! accepted mutations, same first error per mutation, same state.
//!
//! The generated sequence mixes every mutation family the WAL records:
//! row-by-row inserts (valid, duplicate-PK, dangling-FK), SQL DML, bulk
//! batches (all-or-nothing), in-place updates, deletes, unchecked
//! `table_mut` edit sessions, and interleaved `checkpoint()` compactions.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use retro::store::{sql, DataType, Database, StoreError, TableSchema, Value};

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory per test case (no tempfile crate in-tree).
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new() -> Self {
        let dir = std::env::temp_dir().join(format!(
            "retro_recovery_eq_{}_{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Two tables with a PK/FK edge — the smallest schema that exercises every
/// constraint (and therefore every refused-mutation path) the WAL must not
/// record.
fn create_schema(db: &mut Database) {
    db.create_table(
        TableSchema::builder("parents").pk("id").column("name", DataType::Text).build(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("children")
            .pk("id")
            .column("label", DataType::Text)
            .fk("parent_id", "parents", "id")
            .build(),
    )
    .unwrap();
}

/// One decoded mutation step.
#[derive(Debug)]
enum Op {
    InsertParent { pk: i64, tag: u8 },
    InsertChild { pk: i64, fk: i64 },
    SqlInsert { pk: i64 },
    BulkBatch { pk: i64, aux: i64 },
    Update { seed: i64, tag: u8 },
    Delete { seed: i64 },
    GuardEdit { seed: i64, tag: u8 },
    Checkpoint,
}

fn decode(raw: &(u8, i64, u8, i64)) -> Op {
    let &(kind, pk, tag, aux) = raw;
    match kind {
        0 => Op::InsertParent { pk, tag },
        1 => Op::InsertChild { pk, fk: aux % 6 },
        2 => Op::SqlInsert { pk },
        3 => Op::BulkBatch { pk, aux },
        4 => Op::Update { seed: pk, tag },
        5 => Op::Delete { seed: pk },
        6 => Op::GuardEdit { seed: pk, tag },
        _ => Op::Checkpoint,
    }
}

/// Apply one op to a database. `Op::Checkpoint` is skipped on ephemeral
/// databases (there is no log to compact); everything else must behave
/// identically with and without durability.
fn apply(db: &mut Database, op: &Op) -> Result<(), StoreError> {
    match op {
        Op::InsertParent { pk, tag } => db
            .insert("parents", vec![Value::Int(*pk), Value::from(format!("p{pk}v{tag}"))])
            .map(|_| ()),
        Op::InsertChild { pk, fk } => db
            .insert(
                "children",
                vec![Value::Int(*pk), Value::from(format!("c{pk}")), Value::Int(*fk)],
            )
            .map(|_| ()),
        Op::SqlInsert { pk } => {
            sql::run(db, &format!("INSERT INTO parents VALUES ({}, 'sql{pk}')", pk + 20))
                .map(|_| ())
        }
        Op::BulkBatch { pk, aux } => {
            let parent_pk = pk + 40;
            let child_pk = 40 + (pk + aux) % 40;
            let mut loader = db.bulk();
            let parents = loader.table("parents").unwrap();
            let children = loader.table("children").unwrap();
            loader
                .stage(parents, vec![Value::Int(parent_pk), Value::from(format!("bp{parent_pk}"))])
                .and_then(|_| {
                    loader.stage(
                        children,
                        vec![
                            Value::Int(child_pk),
                            Value::from(format!("bc{child_pk}")),
                            Value::Int(parent_pk),
                        ],
                    )
                })
                .and_then(|_| loader.commit())
                .map(|_| ())
        }
        Op::Update { seed, tag } => {
            let len = db.table("parents").unwrap().len();
            if len == 0 {
                return Ok(());
            }
            let pos = (*seed as usize) % len;
            db.update_rows("parents", &[(pos, 1, Value::from(format!("u{tag}")))]).map(|_| ())
        }
        Op::Delete { seed } => {
            let len = db.table("children").unwrap().len();
            if len == 0 {
                return Ok(());
            }
            let pos = (*seed as usize) % len;
            db.delete_rows("children", &[pos]).map(|_| ())
        }
        Op::GuardEdit { seed, tag } => {
            let len = db.table("parents").unwrap().len();
            if len == 0 {
                return Ok(());
            }
            let pos = (*seed as usize) % len;
            let mut guard = db.table_mut("parents")?;
            guard.update_cell(pos, 1, Value::from(format!("g{tag}")))
        }
        Op::Checkpoint => {
            if db.is_durable() {
                db.checkpoint()
            } else {
                Ok(())
            }
        }
    }
}

/// Full observable-state equality: rows, PK indexes, schemas, the version
/// counters, and the change-log history.
fn assert_same_state(
    a: &Database,
    b: &Database,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(a.table_names(), b.table_names());
    prop_assert_eq!(a.write_version(), b.write_version());
    for table in a.table_names() {
        let ta = a.table(table).unwrap();
        let tb = b.table(table).unwrap();
        prop_assert_eq!(ta.schema(), tb.schema());
        prop_assert_eq!(ta.rows(), tb.rows());
        prop_assert_eq!(a.table_version(table), b.table_version(table));
        for row in ta.rows() {
            if let Value::Int(k) = row[0] {
                prop_assert!(ta.contains_pk(k) && tb.contains_pk(k));
            }
        }
    }
    // The change log must replay identically: every record, in order, with
    // the version each mutation produced.
    let changes_a = a.changes_since(0).map(|v| v.into_iter().cloned().collect::<Vec<_>>());
    let changes_b = b.changes_since(0).map(|v| v.into_iter().cloned().collect::<Vec<_>>());
    prop_assert_eq!(changes_a, changes_b);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole property: after EVERY committed mutation, recovery
    /// from disk equals the live state, and the durable database behaves
    /// exactly like an ephemeral one.
    #[test]
    fn recovery_reproduces_the_live_state_at_every_kill_point(
        raw_ops in prop::collection::vec((0u8..8, 0i64..10, 0u8..6, 0i64..12), 1..20)
    ) {
        let scratch = ScratchDir::new();
        let mut live = Database::open(&scratch.0).unwrap();
        prop_assert!(live.is_durable());
        let mut mirror = Database::new();
        create_schema(&mut live);
        create_schema(&mut mirror);

        for raw in &raw_ops {
            let op = decode(raw);
            let live_result = apply(&mut live, &op);
            let mirror_result = apply(&mut mirror, &op);
            // Durability must not change which mutations are accepted or
            // which error they are refused with.
            if !matches!(op, Op::Checkpoint) {
                prop_assert_eq!(&live_result, &mirror_result);
            }
            assert_same_state(&live, &mirror)?;

            // Kill point: recover from the on-disk files and require the
            // exact live state — including version counters and the
            // change history every replayed mutation must re-produce.
            let recovered = Database::recover(&scratch.0).unwrap();
            prop_assert!(recovered.is_durable());
            assert_same_state(&recovered, &live)?;
        }
    }
}

/// Directed pin: recovery composes — recover, keep mutating, recover
/// again; checkpoints interleave at arbitrary commit boundaries.
#[test]
fn recovered_database_continues_the_log_across_checkpoints() {
    let scratch = ScratchDir::new();
    {
        let mut db = Database::open(&scratch.0).unwrap();
        create_schema(&mut db);
        db.insert("parents", vec![Value::Int(1), Value::from("a")]).unwrap();
        db.checkpoint().unwrap();
        db.insert("parents", vec![Value::Int(2), Value::from("b")]).unwrap();
        // Crash: drop with one record in the snapshot and one in the WAL.
    }
    let mut db = Database::recover(&scratch.0).unwrap();
    assert_eq!(db.table("parents").unwrap().len(), 2);
    let version_after_recovery = db.write_version();

    // The recovered handle keeps appending to the same log.
    db.insert("children", vec![Value::Int(10), Value::from("c"), Value::Int(1)]).unwrap();
    db.checkpoint().unwrap();
    db.insert("children", vec![Value::Int(11), Value::from("d"), Value::Int(2)]).unwrap();
    drop(db);

    let again = Database::recover(&scratch.0).unwrap();
    assert_eq!(again.table("parents").unwrap().len(), 2);
    assert_eq!(again.table("children").unwrap().len(), 2);
    assert!(again.table("children").unwrap().contains_pk(11));
    assert_eq!(again.write_version(), version_after_recovery + 2);
}

/// Directed pin: a rolled-back bulk batch leaves no trace in the log — a
/// recovery after the failed batch equals a recovery from before it.
#[test]
fn failed_bulk_batch_is_absent_from_the_log() {
    let scratch = ScratchDir::new();
    let mut db = Database::open(&scratch.0).unwrap();
    create_schema(&mut db);
    db.insert("parents", vec![Value::Int(1), Value::from("a")]).unwrap();
    let version_before = db.write_version();

    let mut loader = db.bulk();
    let children = loader.table("children").unwrap();
    // Dangling FK: the stage fails, the batch rolls back, nothing commits.
    let err =
        loader.stage(children, vec![Value::Int(5), Value::from("c"), Value::Int(99)]).unwrap_err();
    assert!(matches!(err, StoreError::BulkRow { .. }));
    drop(loader);

    assert_eq!(db.write_version(), version_before);
    let recovered = Database::recover(&scratch.0).unwrap();
    assert_eq!(recovered.write_version(), version_before);
    assert!(recovered.table("children").unwrap().is_empty());
    assert_eq!(recovered.table("parents").unwrap().len(), 1);
}
