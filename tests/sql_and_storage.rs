//! Integration tests of the storage substrate: SQL-driven schemas feeding
//! the retrofitting pipeline, and CSV round-trips through the engine.

use retro::core::{Retro, RetroConfig};
use retro::embed::EmbeddingSet;
use retro::store::{csv, sql, Database, Value};

fn seeded_db() -> Database {
    let mut db = Database::new();
    sql::run_script(
        &mut db,
        "CREATE TABLE genres (id INTEGER PRIMARY KEY, name TEXT);
         CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT, rating REAL);
         CREATE TABLE movie_genre (movie_id INTEGER REFERENCES movies(id),
                                   genre_id INTEGER REFERENCES genres(id));
         INSERT INTO genres VALUES (1, 'horror'), (2, 'comedy');
         INSERT INTO movies VALUES (1, 'alien', 8.5), (2, 'brazil', 7.9),
                                   (3, 'amelie', 8.2);
         INSERT INTO movie_genre VALUES (1, 1), (2, 2), (3, 2);",
    )
    .unwrap();
    db
}

#[test]
fn sql_built_schema_feeds_retrofitting() {
    let db = seeded_db();
    let base = EmbeddingSet::new(
        vec!["alien".into(), "brazil".into(), "amelie".into(), "horror".into(), "comedy".into()],
        vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![0.3, 0.7], vec![0.9, 0.1], vec![0.1, 0.9]],
    );
    let out = Retro::new(RetroConfig::default()).retrofit(&db, &base).unwrap();
    assert_eq!(out.embeddings.rows(), 5);
    // The m2m relation through the link table must exist.
    assert!(out.problem.groups.iter().any(|g| g.name.contains("genres.name")));
    // Comedy movies pull toward 'comedy'.
    let brazil = out.vector("movies", "title", "brazil").unwrap();
    let comedy = out.vector("genres", "name", "comedy").unwrap();
    let horror = out.vector("genres", "name", "horror").unwrap();
    assert!(
        retro::linalg::vector::cosine(brazil, comedy)
            > retro::linalg::vector::cosine(brazil, horror)
    );
}

#[test]
fn csv_export_import_preserves_query_results() {
    let mut db = seeded_db();
    let text = csv::export_csv(db.table("movies").unwrap());

    let mut db2 = Database::new();
    sql::run_script(
        &mut db2,
        "CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT, rating REAL)",
    )
    .unwrap();
    csv::import_csv(&mut db2, "movies", &text).unwrap();

    let q = "SELECT title FROM movies WHERE rating >= 8 ORDER BY title";
    let r1 = sql::run(&mut db, q).unwrap();
    let r2 = sql::run(&mut db2, q).unwrap();
    assert_eq!(r1.rows, r2.rows);
    assert_eq!(r1.rows.len(), 2);
}

#[test]
fn constraints_hold_through_the_sql_layer() {
    let mut db = seeded_db();
    // FK violation.
    assert!(sql::run(&mut db, "INSERT INTO movie_genre VALUES (99, 1)").is_err());
    // Duplicate PK.
    assert!(sql::run(&mut db, "INSERT INTO movies VALUES (1, 'dup', 1.0)").is_err());
    // Type mismatch.
    assert!(sql::run(&mut db, "INSERT INTO movies VALUES (9, 42, 1.0)").is_err());
    // Valid insert still works afterwards.
    assert!(sql::run(&mut db, "INSERT INTO movies VALUES (9, 'ok', 1.0)").is_ok());
}

#[test]
fn aggregate_and_join_support_experiment_queries() {
    let mut db = seeded_db();
    let count = sql::run(&mut db, "SELECT COUNT(*) FROM movie_genre").unwrap();
    assert_eq!(count.rows[0][0], Value::Int(3));

    let joined = sql::run(
        &mut db,
        "SELECT g.name, m.title FROM movie_genre mg
         JOIN genres g ON mg.genre_id = g.id
         JOIN movies m ON mg.movie_id = m.id
         WHERE g.name = 'comedy' ORDER BY m.title",
    )
    .unwrap();
    assert_eq!(joined.rows.len(), 2);
    assert_eq!(joined.rows[0][1], Value::from("amelie"));
}

#[test]
fn unique_text_value_count_matches_catalog() {
    let db = seeded_db();
    let base = EmbeddingSet::new(vec!["x".into()], vec![vec![0.0, 0.0]]);
    let out = Retro::new(RetroConfig::default()).retrofit(&db, &base).unwrap();
    assert_eq!(db.unique_text_value_count(), out.catalog.len());
}
