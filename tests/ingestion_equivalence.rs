//! Property test: the batched [`BulkLoader`] ingestion path is
//! *observationally identical* to a row-by-row [`Database::insert`] loop —
//! same accepted batches, same resulting state, same first error, and the
//! same all-or-nothing failure semantics (a bad row in batch N leaves the
//! database exactly as it was before batch N).
//!
//! The generator deliberately produces hostile batches: duplicate primary
//! keys (within a batch and across batches), NULL and mistyped keys, wrong
//! arity, dangling foreign keys, and forward references to rows staged
//! later in the same batch (valid row-by-row only if the parent came
//! first — the loader's staging-order watermark must reproduce that).

use proptest::prelude::*;
use retro::store::{DataType, Database, StoreError, TableSchema, Value};

/// Two-table schema with a PK/FK edge: the smallest shape that exercises
/// every constraint the loader validates.
fn schema() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::builder("parents").pk("id").column("name", DataType::Text).build(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("children")
            .pk("id")
            .column("label", DataType::Text)
            .fk("parent_id", "parents", "id")
            .build(),
    )
    .unwrap();
    db
}

/// One generated staging operation, decoded from plain proptest tuples.
struct Op {
    table: &'static str,
    row: Vec<Value>,
}

/// Decode `(which_table, pk, corruption, fk_ref)` into a row that is valid,
/// subtly broken, or dependent on other rows of the batch.
fn decode(op: &(u8, i64, u8, i64)) -> Op {
    let &(which, pk, corruption, fk_ref) = op;
    let key = match corruption {
        6 => Value::Null,         // NULL primary key
        7 => Value::from("oops"), // mistyped primary key
        _ => Value::Int(pk),
    };
    if which == 0 {
        let row = match corruption {
            8 => vec![key], // wrong arity
            _ => vec![key, Value::from(format!("p{pk}"))],
        };
        Op { table: "parents", row }
    } else {
        let fk = match fk_ref {
            9 => Value::Null,
            10 => Value::Float(1.5), // mistyped foreign key (type error)
            k => Value::Int(k),      // may dangle, may match a staged parent
        };
        let row = match corruption {
            8 => vec![key, Value::from("c")],
            _ => vec![key, Value::from(format!("c{pk}")), fk],
        };
        Op { table: "children", row }
    }
}

/// The reference semantics: insert row by row; on the first error restore
/// the pre-batch snapshot (what the CSV importer historically did with
/// truncate-on-error). Returns the number of inserted rows, or the first
/// error plus the 0-based index of the offending row.
fn apply_row_by_row(db: &mut Database, ops: &[Op]) -> Result<usize, (usize, StoreError)> {
    let snapshot = db.clone();
    for (i, op) in ops.iter().enumerate() {
        if let Err(e) = db.insert(op.table, op.row.clone()) {
            *db = snapshot;
            return Err((i, e));
        }
    }
    Ok(ops.len())
}

/// The bulk semantics under test: stage everything, commit once. A stage
/// error already rolled the batch back inside the loader; the early return
/// drops the loader, which reinstalls the untouched tables.
fn apply_bulk(db: &mut Database, ops: &[Op]) -> Result<usize, (usize, StoreError)> {
    let mut loader = db.bulk();
    let parents = loader.table("parents").unwrap();
    let children = loader.table("children").unwrap();
    for op in ops {
        let handle = if op.table == "parents" { parents } else { children };
        if let Err(err) = loader.stage(handle, op.row.clone()) {
            match err {
                StoreError::BulkRow { row, source, .. } => return Err((row, *source)),
                other => panic!("stage must fail with BulkRow, got {other:?}"),
            }
        }
    }
    Ok(loader.commit().expect("all stages succeeded"))
}

fn assert_same_state(
    a: &Database,
    b: &Database,
) -> Result<(), proptest::test_runner::TestCaseError> {
    prop_assert_eq!(a.table_names(), b.table_names());
    for table in a.table_names() {
        let ta = a.table(table).unwrap();
        let tb = b.table(table).unwrap();
        prop_assert_eq!(ta.rows(), tb.rows());
        // The PK index must agree with the rows on both sides.
        for row in ta.rows() {
            if let Value::Int(k) = row[0] {
                prop_assert!(ta.contains_pk(k) && tb.contains_pk(k));
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Feed identical randomized batch sequences to both ingestion paths
    /// and require identical observable behaviour after every batch.
    #[test]
    fn bulk_ingestion_is_equivalent_to_row_by_row(
        batches in prop::collection::vec(
            prop::collection::vec((0u8..2, 0i64..8, 0u8..10, 0i64..12), 0..24),
            1..4,
        )
    ) {
        let mut row_db = schema();
        let mut bulk_db = schema();

        for raw in &batches {
            let ops: Vec<Op> = raw.iter().map(decode).collect();
            let pre_bulk = bulk_db.clone();

            let row_result = apply_row_by_row(&mut row_db, &ops);
            let bulk_result = apply_bulk(&mut bulk_db, &ops);

            match (&row_result, &bulk_result) {
                (Ok(n_row), Ok(n_bulk)) => prop_assert_eq!(n_row, n_bulk),
                (Err((i_row, e_row)), Err((i_bulk, e_bulk))) => {
                    // Same offending row, same underlying violation.
                    prop_assert_eq!(i_row, i_bulk);
                    prop_assert_eq!(e_row, e_bulk);
                    // A failed batch leaves the database exactly as it was
                    // before the batch.
                    assert_same_state(&bulk_db, &pre_bulk)?;
                }
                (row, bulk) => {
                    return Err(proptest::test_runner::TestCaseError::Fail(format!(
                        "paths diverged: row-by-row {row:?} vs bulk {bulk:?}"
                    )));
                }
            }

            // After every batch — success or rollback — the two databases
            // are indistinguishable.
            assert_same_state(&row_db, &bulk_db)?;
        }
    }
}

/// Directed (non-random) pin of the forward-reference rule, since the
/// random generator only hits it occasionally: a child may reference a
/// parent staged earlier in the batch, never one staged later.
#[test]
fn forward_reference_matches_row_by_row() {
    let child = |pk: i64, fk: i64| vec![Value::Int(pk), Value::from("c"), Value::Int(fk)];
    let parent = |pk: i64| vec![Value::Int(pk), Value::from("p")];

    // Parent staged first: both paths accept.
    let mut db = schema();
    let mut loader = db.bulk();
    let p = loader.table("parents").unwrap();
    let c = loader.table("children").unwrap();
    loader.stage(p, parent(1)).unwrap();
    loader.stage(c, child(10, 1)).unwrap();
    assert_eq!(loader.commit().unwrap(), 2);

    // Parent staged second: both paths reject the child immediately, and
    // the already-staged prefix is rolled back — nothing is inserted.
    let mut db = schema();
    let mut loader = db.bulk();
    let p = loader.table("parents").unwrap();
    let c = loader.table("children").unwrap();
    let err = loader.stage(c, child(10, 1)).unwrap_err();
    assert!(matches!(
        &err,
        StoreError::BulkRow { row: 0, source, .. }
            if matches!(**source, StoreError::ForeignKeyViolation { .. })
    ));
    // The loader is poisoned: staging more (even a valid parent) is refused.
    assert!(loader.stage(p, parent(1)).is_err());
    assert!(loader.commit().is_err());
    assert!(db.table("parents").unwrap().is_empty());
    assert!(db.table("children").unwrap().is_empty());
}
