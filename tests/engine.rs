//! Full-system contracts of the multi-database serving engine
//! (`docs/ENGINE.md`): generation-pinned sessions stay coherent under
//! concurrent writers, the bounded generation cache never frees a pinned
//! generation, admission sheds deterministically at the configured depth,
//! and `NEAREST` in SQL is bit-identical to the exact-scan oracle —
//! including after a crash/recover cycle through the WAL and the
//! persisted serving snapshot.
//!
//! Sizes default small so `cargo test` stays quick; CI raises
//! `RETRO_SERVE_STRESS` for a release-mode soak (same gate as
//! `tests/serving.rs`).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use retro::core::serve::SearchMode;
use retro::core::{
    AdmissionConfig, Engine, EngineConfig, EngineError, Hyperparameters, Overloaded, RetroConfig,
};
use retro::embed::EmbeddingSet;
use retro::store::sql::PlanMode;
use retro::store::{Database, SharedDatabase, Value};

fn stress_rounds(default: usize) -> usize {
    std::env::var("RETRO_SERVE_STRESS").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new() -> Self {
        let dir = std::env::temp_dir().join(format!(
            "retro_engine_{}_{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn base() -> EmbeddingSet {
    let tokens: Vec<String> = (0..40).map(|i| format!("tok{i}")).collect();
    let vectors: Vec<Vec<f32>> =
        (0..40).map(|i| (0..8).map(|d| ((i * 7 + d * 3) as f32 * 0.37).sin()).collect()).collect();
    EmbeddingSet::new(tokens, vectors)
}

fn config() -> RetroConfig {
    RetroConfig::default()
        .with_params(Hyperparameters::paper_rn().with_threads(2))
        .with_iterations(3)
}

fn movie_title(id: i64) -> String {
    format!("movie{id} tok{} tok{}", 8 + (id % 16), 24 + (id % 16))
}

/// A persons+movies database with `n_movies` rows, built in `db` (either
/// an ephemeral `Database::new()` or a durable `Database::open(..)`).
fn populate(db: &mut Database, n_movies: usize) {
    use retro::store::{DataType, TableSchema};
    db.create_table(
        TableSchema::builder("persons").pk("id").column("name", DataType::Text).build(),
    )
    .unwrap();
    db.create_table(
        TableSchema::builder("movies")
            .pk("id")
            .column("title", DataType::Text)
            .fk("director_id", "persons", "id")
            .build(),
    )
    .unwrap();
    for p in 0..4i64 {
        db.insert("persons", vec![Value::Int(p), Value::from(format!("tok{p} tok{}", p + 4))])
            .unwrap();
    }
    for m in 0..n_movies as i64 {
        db.insert("movies", vec![Value::Int(m), Value::from(movie_title(m)), Value::Int(m % 4)])
            .unwrap();
    }
}

fn insert_sql(id: i64) -> String {
    format!("INSERT INTO movies VALUES ({id}, '{}', {})", movie_title(id), id % 4)
}

/// The NEAREST rows a session serves for `token`, as raw SQL values —
/// the unit of bit-identity comparisons below.
fn nearest_rows(session: &retro::core::Session, token: &str, k: usize) -> Vec<Vec<Value>> {
    session
        .query(&format!(
            "SELECT id, token, score FROM NEAREST('movies', 'title', '{token}', {k}) n"
        ))
        .unwrap()
        .rows
}

/// A session's whole view — SQL counts, the frozen store, the snapshot
/// stamp — must describe one write version, no matter what concurrent
/// writers and refreshers are doing to the live database.
#[test]
fn sessions_stay_coherent_under_concurrent_writers() {
    let rounds = stress_rounds(3);
    let n_movies = 8 * rounds;
    let mut db = Database::new();
    populate(&mut db, n_movies);

    let engine = Engine::with_defaults();
    engine.register("tmdb", SharedDatabase::new(db), base(), config()).unwrap();

    let writes = 4 * rounds as i64;
    let done = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|s| {
        let writer = s.spawn(|| {
            for w in 0..writes {
                engine.execute("tmdb", &insert_sql(1_000 + w)).unwrap();
                if w % 2 == 1 {
                    engine.refresh("tmdb").unwrap();
                }
            }
            done.store(true, Ordering::Release);
        });
        let readers: Vec<_> = (0..3)
            .map(|_| {
                s.spawn(|| {
                    while !done.load(Ordering::Acquire) {
                        let session = engine.session("tmdb").unwrap();
                        // The three stamps agree: snapshot, frozen store,
                        // and the session's own report.
                        assert_eq!(session.write_version(), session.store().write_version());
                        assert_eq!(session.write_version(), session.snapshot().write_version());
                        // SQL answers come from the frozen store, not the
                        // moving live database — and stay put across
                        // repeated queries on one session.
                        let count = session.query("SELECT COUNT(*) FROM movies").unwrap().rows[0]
                            [0]
                        .clone();
                        let frozen = session.store().table("movies").unwrap().len() as i64;
                        assert_eq!(count, Value::Int(frozen));
                        assert_eq!(
                            session.query("SELECT COUNT(*) FROM movies").unwrap().rows[0][0],
                            count
                        );
                        // The planner's oracle holds inside sessions too.
                        let sql_text = format!(
                            "SELECT m.title, n.score FROM NEAREST('{}', 5) n \
                             JOIN movies m ON m.title = n.token",
                            movie_title(0)
                        );
                        let planned = session.query(&sql_text).unwrap();
                        let scanned = session.query_with(&sql_text, PlanMode::ForceScan).unwrap();
                        assert_eq!(planned.rows, scanned.rows);
                    }
                })
            })
            .collect();
        for r in readers {
            r.join().unwrap();
        }
        writer.join().unwrap();
    });

    // Once the dust settles, a fresh session serves everything written.
    engine.refresh_if_stale("tmdb").unwrap();
    let fresh = engine.session("tmdb").unwrap();
    assert_eq!(
        fresh.query("SELECT COUNT(*) FROM movies").unwrap().rows[0][0],
        Value::Int(n_movies as i64 + writes)
    );
    assert_eq!(fresh.write_version(), fresh.store().write_version());
}

/// The generation cache bounds the *engine's* footprint; a session
/// holding an evicted generation keeps serving it untouched.
#[test]
fn eviction_never_frees_a_pinned_generation() {
    let mut db = Database::new();
    populate(&mut db, 8);

    let engine = Engine::new(EngineConfig { generation_cache: 2, ..EngineConfig::default() });
    engine.register("tmdb", SharedDatabase::new(db), base(), config()).unwrap();

    let old = engine.session("tmdb").unwrap();
    assert_eq!(old.generation(), 1);
    let old_version = old.write_version();
    let old_nearest = nearest_rows(&old, &movie_title(0), 5);
    assert!(!old_nearest.is_empty());

    let refreshes = 2 + stress_rounds(3);
    for round in 0..refreshes as i64 {
        engine.execute("tmdb", &insert_sql(2_000 + round)).unwrap();
        engine.refresh("tmdb").unwrap();
    }

    // The cache kept only the newest two generations; generation 1 is out.
    let cached = engine.pinned_generations("tmdb").unwrap();
    assert_eq!(cached.len(), 2);
    assert!(!cached.contains(&1), "generation 1 must be evicted: {cached:?}");

    // Yet the pinned session's world is byte-for-byte where it was.
    assert_eq!(old.generation(), 1);
    assert_eq!(old.write_version(), old_version);
    assert_eq!(old.store().table("movies").unwrap().len(), 8);
    assert_eq!(nearest_rows(&old, &movie_title(0), 5), old_nearest);

    // And new sessions read the newest generation, not a stale cache slot.
    let fresh = engine.session("tmdb").unwrap();
    assert_eq!(fresh.generation(), *cached.last().unwrap());
    assert_eq!(
        fresh.store().table("movies").unwrap().len(),
        8 + refreshes,
        "fresh sessions see every refreshed write"
    );
}

/// Admission sheds at exactly the configured depth — `QueueFull` the
/// moment concurrency and queue are exhausted, `Deadline` when a queued
/// request outlives its timeout — and recovers as permits return.
#[test]
fn admission_sheds_deterministically_at_depth() {
    let mut db = Database::new();
    populate(&mut db, 4);

    let engine = Engine::new(EngineConfig {
        admission: AdmissionConfig {
            max_concurrent: 1,
            max_queue: 0,
            queue_timeout: Duration::from_millis(1),
        },
        ..EngineConfig::default()
    });
    engine.register("tmdb", SharedDatabase::new(db), base(), config()).unwrap();

    // One slot, zero queue: while it is held, every attempt sheds — reads
    // and writes alike, deterministically, however many arrive.
    let held = engine.session("tmdb").unwrap();
    let attempts = stress_rounds(3);
    for _ in 0..attempts {
        let refused = engine.session("tmdb").unwrap_err();
        assert!(
            matches!(
                refused,
                EngineError::Overloaded(Overloaded::QueueFull { queued: 0, max_queue: 0 })
            ),
            "expected an immediate QueueFull shed, got {refused}"
        );
    }
    let refused_write = engine.execute("tmdb", &insert_sql(3_000)).unwrap_err();
    assert!(matches!(refused_write, EngineError::Overloaded(Overloaded::QueueFull { .. })));
    assert_eq!(engine.shed_count(), attempts as u64 + 1);

    // Dropping the held permit reopens the gate immediately.
    drop(held);
    let reopened = engine.session("tmdb").unwrap();
    assert_eq!(reopened.query("SELECT COUNT(*) FROM movies").unwrap().rows[0][0], Value::Int(4));
    drop(reopened);

    // A queue slot that never gets a permit sheds with Deadline instead.
    let engine = Engine::new(EngineConfig {
        admission: AdmissionConfig {
            max_concurrent: 1,
            max_queue: 4,
            queue_timeout: Duration::from_millis(5),
        },
        ..EngineConfig::default()
    });
    let mut db = Database::new();
    populate(&mut db, 4);
    engine.register("tmdb", SharedDatabase::new(db), base(), config()).unwrap();
    let held = engine.session("tmdb").unwrap();
    let expired = engine.session("tmdb").unwrap_err();
    assert!(
        matches!(expired, EngineError::Overloaded(Overloaded::Deadline { .. })),
        "expected a Deadline shed after the queue wait, got {expired}"
    );
    drop(held);
}

/// `NEAREST` in SQL equals `Snapshot::nearest_token` under the exact scan
/// bit for bit; probing every list reproduces it; and a crash/recover
/// cycle through `Database::recover` + `Engine::register_recovered`
/// changes none of those bits — before or after post-crash writes.
#[test]
fn nearest_is_bit_identical_to_the_exact_oracle_even_after_recovery() {
    let scratch = ScratchDir::new();
    let embed_path = scratch.0.join("embeddings.rsrv");
    let n_movies = 8 * stress_rounds(3);

    // ---- Before the crash: a durable store served through an engine.
    let mut db = Database::open(&scratch.0).unwrap();
    populate(&mut db, n_movies);
    let survivor = Engine::with_defaults();
    survivor.register("tmdb", SharedDatabase::new(db), base(), config()).unwrap();
    survivor.execute("tmdb", &insert_sql(900)).unwrap();
    survivor.refresh("tmdb").unwrap();
    let service = survivor.service("tmdb").unwrap();
    service.save_snapshot(&embed_path).unwrap();
    service.database().with_write(|db| db.checkpoint()).unwrap();

    let tokens: Vec<String> = (0..4).map(|i| movie_title(i as i64)).collect();
    let check_session = |session: &retro::core::Session| {
        for token in &tokens {
            let rows = nearest_rows(session, token, 10);
            // The SQL surface equals the direct snapshot call, bit for bit.
            let direct = session.nearest_token("movies", "title", token, 10).unwrap();
            assert_eq!(rows.len(), direct.len());
            for (row, (id, score)) in rows.iter().zip(&direct) {
                assert_eq!(row[0], Value::Int(*id as i64));
                assert_eq!(row[2], Value::Float(f64::from(*score)));
            }
        }
    };

    let pre = survivor.session("tmdb").unwrap();
    check_session(&pre);
    let expected: Vec<_> = tokens.iter().map(|t| nearest_rows(&pre, t, 10)).collect();

    // ---- The crash: both layers come back from disk into a new engine.
    let recovered_db = Database::recover(&scratch.0).unwrap();
    let restarted = Engine::with_defaults();
    restarted
        .register_recovered(
            "tmdb",
            SharedDatabase::new(recovered_db),
            base(),
            config(),
            &embed_path,
        )
        .unwrap();

    let post = restarted.session("tmdb").unwrap();
    assert_eq!(post.generation(), pre.generation());
    assert_eq!(post.write_version(), pre.write_version());
    check_session(&post);
    let recovered_rows: Vec<_> = tokens.iter().map(|t| nearest_rows(&post, t, 10)).collect();
    assert_eq!(recovered_rows, expected, "recovery must not move a single bit of the ranking");

    // Full-probe approximate equals exact, crash or no crash.
    let mut full_probe = restarted.session("tmdb").unwrap();
    full_probe
        .set_search_mode(SearchMode::Approx { probes: full_probe.snapshot().index().nlist() });
    let approx_rows: Vec<_> = tokens.iter().map(|t| nearest_rows(&full_probe, t, 10)).collect();
    assert_eq!(approx_rows, expected, "probing every list must reproduce the exact ranking");

    // ---- Post-crash writes land on both sides; fresh sessions agree.
    for round in 0..stress_rounds(3) as i64 {
        survivor.execute("tmdb", &insert_sql(1_000 + round)).unwrap();
        restarted.execute("tmdb", &insert_sql(1_000 + round)).unwrap();
    }
    survivor.refresh("tmdb").unwrap();
    restarted.refresh("tmdb").unwrap();
    let survivor_fresh = survivor.session("tmdb").unwrap();
    let restarted_fresh = restarted.session("tmdb").unwrap();
    assert_eq!(survivor_fresh.generation(), restarted_fresh.generation());
    assert_eq!(survivor_fresh.write_version(), restarted_fresh.write_version());
    for token in tokens.iter().chain([movie_title(1_000)].iter()) {
        assert_eq!(
            nearest_rows(&survivor_fresh, token, 10),
            nearest_rows(&restarted_fresh, token, 10),
            "post-crash refresh must converge to the uninterrupted ranking bit for bit"
        );
    }
    check_session(&restarted_fresh);
}
