//! Index/refresh coherence for the served ANN path.
//!
//! The contract: whatever refresh plan published a snapshot — delta patch,
//! no-change republish, or full rebuild — the snapshot's IVF index must be
//! indistinguishable from an index freshly assigned from the snapshot's
//! own rows. Concretely, after every refresh:
//!
//! * the index covers exactly the snapshot's rows (no tear);
//! * its assignments are bit-identical to a fresh `with_centroids`
//!   assignment of the same rows against the same centroids (the
//!   frozen-centroid patching contract of `IvfIndex::refreshed`);
//! * it answers **identically — same ids, same scores —** to that fresh
//!   index at serving probe depth, and to the exact `top_k_cosine` oracle
//!   at full probe depth;
//! * after a *full* refresh, the index is bit-identical to
//!   `IvfIndex::build` from scratch (full refreshes retrain centroids).
//!
//! Pinned over randomized DML sequences (inserts, numeric updates,
//! relational updates — exercising the delta, no-change and full plans)
//! for both solvers at 1 and 8 threads, plus a concurrent stress mirror
//! of `tests/serving.rs` where readers query through `SearchMode::Approx`
//! while a writer forces refreshes (`RETRO_SERVE_STRESS` raises the soak).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use retro::core::serve::{EmbeddingService, SearchMode, Snapshot};
use retro::core::{RefreshKind, RetroConfig, Solver};
use retro::embed::nn::top_k_cosine;
use retro::embed::EmbeddingSet;
use retro::nn::ann::IvfIndex;
use retro::store::{sql, Database, SharedDatabase, Value};

/// Stress-loop iteration count (see `tests/serving.rs`).
fn stress_rounds(default: usize) -> usize {
    std::env::var("RETRO_SERVE_STRESS").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn base() -> EmbeddingSet {
    let tokens: Vec<String> = (0..40).map(|i| format!("tok{i}")).collect();
    let vectors: Vec<Vec<f32>> =
        (0..40).map(|i| (0..8).map(|d| ((i * 7 + d * 3) as f32 * 0.37).sin()).collect()).collect();
    EmbeddingSet::new(tokens, vectors)
}

fn movie_title(id: i64) -> Value {
    Value::from(format!("movie{id} tok{} tok{}", 8 + (id % 16), 24 + (id % 16)))
}

fn person_name(id: i64) -> Value {
    Value::from(format!("person{id} tok{} tok{}", id % 8, 4 + (id % 8)))
}

/// A service over the serving schema plus a numeric column, with the id
/// bookkeeping needed to aim updates at valid rows.
struct Harness {
    service: Arc<EmbeddingService>,
    movie_ids: Vec<i64>,
    person_ids: Vec<i64>,
    next: i64,
}

impl Harness {
    fn start(n_movies: usize, solver: Solver, threads: usize) -> Self {
        let mut db = Database::new();
        sql::run_script(
            &mut db,
            "CREATE TABLE persons (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT, budget FLOAT,
                                  director_id INTEGER REFERENCES persons(id));",
        )
        .unwrap();
        let mut person_ids = Vec::new();
        for p in 0..4i64 {
            db.insert("persons", vec![Value::Int(p), person_name(p)]).unwrap();
            person_ids.push(p);
        }
        let mut movie_ids = Vec::new();
        for m in 0..n_movies as i64 {
            db.insert(
                "movies",
                vec![Value::Int(m), movie_title(m), Value::Float(m as f64), Value::Int(m % 4)],
            )
            .unwrap();
            movie_ids.push(m);
        }
        let cfg = RetroConfig::default().with_solver(solver);
        let params = cfg.params.with_threads(threads);
        let config = cfg.with_params(params).with_iterations(3);
        let service = EmbeddingService::start(SharedDatabase::new(db), base(), config).unwrap();
        // Keep single-row inserts on the delta plan even on a small graph,
        // so the sequence actually exercises index *patching*.
        service.tune_session(|s| s.delta_max_dirty_fraction = 1.0);
        Harness { service, movie_ids, person_ids, next: 10_000 }
    }

    /// Apply the op encoded by `b`: mostly inserts (delta plan), plus
    /// numeric updates (no-change plan) and relational updates (full
    /// fallback).
    fn apply(&mut self, b: u8) {
        self.next += 1;
        let id = self.next;
        let db = self.service.database();
        match b % 6 {
            0..=2 => {
                db.with_write(|db| {
                    db.insert(
                        "movies",
                        vec![
                            Value::Int(id),
                            movie_title(id),
                            Value::Float(0.0),
                            Value::Int(id % 4),
                        ],
                    )
                    .map(|_| ())
                })
                .unwrap();
                self.movie_ids.push(id);
            }
            3 => {
                db.with_write(|db| {
                    db.insert("persons", vec![Value::Int(id), person_name(id)]).map(|_| ())
                })
                .unwrap();
                self.person_ids.push(id);
            }
            4 => {
                let row = b as usize % self.movie_ids.len();
                db.with_write(|db| {
                    db.update_rows("movies", &[(row, 2, Value::Float(f64::from(b)))]).map(|_| ())
                })
                .unwrap();
            }
            _ => {
                let row = b as usize % self.movie_ids.len();
                let director = self.person_ids[b as usize % self.person_ids.len()];
                db.with_write(|db| {
                    db.update_rows("movies", &[(row, 3, Value::Int(director))]).map(|_| ())
                })
                .unwrap();
            }
        }
    }
}

/// The coherence oracle: the published index must be indistinguishable
/// from a fresh assignment of the snapshot's own rows.
fn assert_index_coherent(snap: &Snapshot, context: &str) {
    let m = &snap.output().embeddings;
    let norms = snap.norms();
    let index = snap.index();
    assert_eq!(index.len(), snap.len(), "index/matrix tear {context}");

    // Structural: bit-identical to re-assigning every row against the
    // index's own (frozen) centroids.
    let fresh = IvfIndex::with_centroids(m, norms, index.centroids().clone(), *index.config(), 1);
    assert_eq!(index.assignments(), fresh.assignments(), "stale assignment {context}");

    // Behavioural: same ids, same scores — vs the fresh index at serving
    // probe depth, and vs the exact oracle at full depth.
    let probes = snap.default_probes();
    for q in [0, snap.len() / 2, snap.len() - 1] {
        let query = m.row(q);
        assert_eq!(
            index.search(query, 10, probes),
            fresh.search(query, 10, probes),
            "probed answers diverged {context}"
        );
        assert_eq!(
            index.search(query, 10, index.nlist()),
            top_k_cosine(m, norms, query, 10, 1, |_| false),
            "full-probe answers left the oracle {context}"
        );
    }
}

fn run_sequence(solver: Solver, threads: usize, ops: &[u8]) {
    let mut harness = Harness::start(40, solver, threads);
    assert_index_coherent(&harness.service.snapshot(), "at initial publish");
    let mut kinds = Vec::new();
    for (step, &b) in ops.iter().enumerate() {
        harness.apply(b);
        harness.service.refresh().unwrap();
        let kind = harness.service.last_refresh().unwrap();
        kinds.push(kind);
        let snap = harness.service.snapshot();
        let context = format!("after step {step} (op {b}, {kind:?}, {solver:?} x{threads})");
        assert_index_coherent(&snap, &context);

        // A full refresh rebuilds from scratch: the published index must
        // be bit-identical to `IvfIndex::build` on the snapshot's rows.
        if kind == RefreshKind::Full {
            let built =
                IvfIndex::build(&snap.output().embeddings, snap.norms(), *snap.index().config(), 1);
            assert_eq!(snap.index().assignments(), built.assignments(), "{context}");
            assert_eq!(
                snap.index().centroids().as_slice(),
                built.centroids().as_slice(),
                "{context}"
            );
        }
    }
    // The sequence must actually have exercised the delta (patching) plan
    // whenever it inserted anything — otherwise this test pins nothing.
    if ops.iter().any(|&b| b % 6 <= 3) {
        assert!(
            kinds.contains(&RefreshKind::Delta),
            "no delta refresh in {kinds:?} — the patch path went untested"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized DML + refresh keeps the published index coherent, for
    /// both solvers, at 1 and 8 threads.
    #[test]
    fn refreshed_index_matches_a_fresh_build(ops in prop::collection::vec(0u8..=255, 1..6)) {
        for (solver, threads) in [(Solver::Rn, 1), (Solver::Rn, 8), (Solver::Ro, 1), (Solver::Ro, 8)] {
            run_sequence(solver, threads, &ops);
        }
    }
}

/// The dispatch pins, deterministically: one insert is a delta patch, one
/// numeric update is a no-change republish, one relational update is a
/// full rebuild — and the index stays coherent through each.
#[test]
fn each_refresh_plan_keeps_the_index_coherent() {
    let mut harness = Harness::start(32, Solver::Rn, 2);
    for (op, want) in
        [(0u8, RefreshKind::Delta), (4, RefreshKind::NoChange), (5, RefreshKind::Full)]
    {
        harness.apply(op);
        harness.service.refresh().unwrap();
        assert_eq!(harness.service.last_refresh(), Some(want), "op {op}");
        assert_index_coherent(&harness.service.snapshot(), &format!("after {want:?}"));
    }
}

/// Concurrent mirror of `tests/serving.rs`: readers query through the ANN
/// path while a writer forces refreshes. No torn index, monotone
/// generations, sane rankings at every observation.
#[test]
fn concurrent_ann_readers_observe_only_coherent_indexes() {
    let mut harness = Harness::start(24, Solver::Rn, 1);
    let service = Arc::clone(&harness.service);
    let stop = Arc::new(AtomicBool::new(false));
    let rounds = stress_rounds(4);

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_generation = 0u64;
                let mut observed = 0usize;
                while observed == 0 || !stop.load(Ordering::Acquire) {
                    let snap = service.snapshot();
                    assert!(
                        snap.generation() >= last_generation,
                        "generation went backwards: {} < {last_generation}",
                        snap.generation()
                    );
                    last_generation = snap.generation();

                    // No torn snapshot — the index included.
                    let rows = snap.output().embeddings.rows();
                    assert_eq!(snap.len(), rows, "catalog/matrix tear");
                    assert_eq!(snap.norms().len(), rows, "norm-cache tear");
                    assert_eq!(snap.index().len(), rows, "index tear");

                    // ANN queries on the snapshot are internally
                    // consistent, and full probing is still the oracle.
                    let query = snap.output().embeddings.row(0);
                    let probes = snap.default_probes();
                    let nn = snap.nearest(query, 8, SearchMode::Approx { probes });
                    assert!(nn.iter().all(|&(id, s)| id < rows && s.is_finite()));
                    assert!(nn.windows(2).all(|p| p[0].1 >= p[1].1), "ranking not descending");
                    assert_eq!(
                        snap.nearest(query, 8, SearchMode::Approx { probes: snap.index().nlist() }),
                        snap.nearest(query, 8, SearchMode::Exact),
                        "full-probe ANN left the oracle mid-stress"
                    );
                    observed += 1;
                }
                observed
            })
        })
        .collect();

    for round in 0..rounds {
        // Writer: the op mix drives delta, no-change and full plans.
        harness.apply(round as u8);
        harness.service.refresh().unwrap();
    }

    stop.store(true, Ordering::Release);
    for handle in readers {
        let observed = handle.join().expect("reader panicked — an ANN invariant broke");
        assert!(observed > 0, "reader never observed a snapshot");
    }
    assert_eq!(service.generation(), rounds as u64 + 1);
    assert_index_coherent(&service.snapshot(), "after the stress loop");
}
