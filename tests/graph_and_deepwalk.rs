//! Integration of graph generation (§3.4) and DeepWalk training over
//! generated datasets.

use retro::core::graphgen::generate_graph;
use retro::core::RetrofitProblem;
use retro::datasets::{TmdbConfig, TmdbDataset};
use retro::deepwalk::{DeepWalk, DeepWalkConfig, SgnsConfig};
use retro::graph::WalkConfig;
use retro::linalg::vector;

fn problem() -> (TmdbDataset, RetrofitProblem) {
    let data = TmdbDataset::generate(TmdbConfig { n_movies: 80, dim: 16, ..TmdbConfig::default() });
    let p = RetrofitProblem::build(&data.db, &data.base, &[], &[]);
    (data, p)
}

#[test]
fn generated_graph_matches_section_3_4() {
    let (_, p) = problem();
    let g = generate_graph(&p.catalog, &p.groups);
    // V = text values + one blank node per category.
    assert_eq!(g.graph.node_count(), p.len() + p.catalog.category_count());
    // E = category edges (one per text value) + relation edges.
    let relation_edges: usize = p.groups.iter().map(|gr| gr.len()).sum();
    assert_eq!(g.graph.edge_count(), p.len() + relation_edges);
    assert!(g.graph.is_symmetric());
    // Category nodes are not text nodes.
    assert!(!g.graph.node(g.category_node(0)).is_text());
    assert!(g.graph.node(0).is_text());
}

#[test]
fn deepwalk_separates_genres_through_graph_structure() {
    let (data, p) = problem();
    let g = generate_graph(&p.catalog, &p.groups);
    let config = DeepWalkConfig {
        walks: WalkConfig { walks_per_node: 8, walk_length: 16 },
        sgns: SgnsConfig { dim: 24, ..SgnsConfig::default() },
        seed: 5,
    };
    let emb = DeepWalk::new(config).train(&g.graph);
    assert_eq!(emb.rows(), g.graph.node_count());

    // Movies sharing a genre should be closer in DW space than movies with
    // disjoint genres (aggregate over many pairs).
    let mut shared = 0.0f32;
    let mut disjoint = 0.0f32;
    let mut n_shared = 0;
    let mut n_disjoint = 0;
    for a in 0..data.movie_titles.len() {
        for b in (a + 1)..data.movie_titles.len() {
            let ia = p.catalog.lookup("movies", "title", &data.movie_titles[a]).unwrap();
            let ib = p.catalog.lookup("movies", "title", &data.movie_titles[b]).unwrap();
            let cos = vector::cosine(emb.row(ia), emb.row(ib));
            if data.movie_genres[a].iter().any(|g| data.movie_genres[b].contains(g)) {
                shared += cos;
                n_shared += 1;
            } else {
                disjoint += cos;
                n_disjoint += 1;
            }
        }
    }
    let shared_mean = shared / n_shared.max(1) as f32;
    let disjoint_mean = disjoint / n_disjoint.max(1) as f32;
    assert!(shared_mean > disjoint_mean, "shared-genre {shared_mean} vs disjoint {disjoint_mean}");
}

#[test]
fn ablated_relation_disconnects_genre_nodes() {
    // §5.7's DW failure mode: with movie_genre removed, genre text nodes
    // keep only their single category edge.
    let data = TmdbDataset::generate(TmdbConfig { n_movies: 40, dim: 8, ..TmdbConfig::default() });
    let p = RetrofitProblem::build(&data.db, &data.base, &[], &["genres.name"]);
    let g = generate_graph(&p.catalog, &p.groups);
    for genre in retro::datasets::tmdb::GENRES {
        let id = p.catalog.lookup("genres", "name", genre).unwrap();
        assert_eq!(g.graph.degree(id), 1, "genre `{genre}` should only keep its category edge");
    }
}
