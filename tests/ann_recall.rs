//! Recall gate for the IVF-flat ANN path against the exact
//! `top_k_cosine` oracle.
//!
//! Three contracts, each over randomized inputs:
//!
//! * **Full probing IS the oracle.** For arbitrary matrices — any dims,
//!   row counts, seeds — probing every inverted list returns bit-for-bit
//!   the exact scan's ids *and* scores. The ANN path shares the exact
//!   path's dot kernel, sanitize rules, and tie-breaking, so there is no
//!   "approximately equal" here: it is the same ranking.
//! * **Recall@10 ≥ 0.95 at sub-linear probe depth** on planted-cluster
//!   data (the shape retrofitted embeddings have: topics pull their
//!   values together), probing a quarter of the lists.
//! * **Adversarial rows never surface.** NaN-poisoned and zero-norm rows
//!   — which the exact path already pins to sanitized `0.0` scores — must
//!   behave identically through the approximate path, at every probe
//!   depth.

use proptest::prelude::*;
use retro::embed::nn::top_k_cosine;
use retro::linalg::Matrix;
use retro::nn::ann::{IvfConfig, IvfIndex};

/// Deterministic pseudo-random matrix (values in roughly [-1, 1]).
fn random_matrix(rows: usize, dim: usize, seed: u64) -> Matrix {
    let mut state = seed | 1;
    Matrix::from_fn(rows, dim, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
    })
}

/// Planted-cluster matrix: `n` rows scattered (with noise) around
/// `clusters` well-separated anchor directions.
fn clustered_matrix(n: usize, dim: usize, clusters: usize, seed: u64) -> Matrix {
    let anchors = random_matrix(clusters, dim, seed.wrapping_mul(7919));
    let noise = random_matrix(n, dim, seed.wrapping_mul(104729));
    Matrix::from_fn(n, dim, |r, c| anchors.get(r % clusters, c) + 0.12 * noise.get(r, c))
}

fn recall_at_10(
    index: &IvfIndex,
    m: &Matrix,
    norms: &[f32],
    probes: usize,
    queries: &[usize],
) -> f64 {
    let mut overlap = 0usize;
    let mut denom = 0usize;
    for &q in queries {
        let exact = top_k_cosine(m, norms, m.row(q), 10, 1, |_| false);
        let approx = index.search(m.row(q), 10, probes);
        overlap += approx.iter().filter(|(id, _)| exact.iter().any(|(e, _)| e == id)).count();
        denom += exact.len();
    }
    overlap as f64 / denom.max(1) as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Probing every list reproduces the oracle bit for bit — on matrices
    /// with no structure at all, across dims, row counts, and seeds.
    #[test]
    fn full_probe_equals_the_exact_oracle(
        rows in 1usize..400,
        dim in 2usize..24,
        seed in 0u64..u64::MAX,
        k in 1usize..16,
    ) {
        let m = random_matrix(rows, dim, seed);
        let norms = m.row_norms();
        let config = IvfConfig::auto(rows).with_seed(seed);
        let index = IvfIndex::build(&m, &norms, config, 1);
        for q in [0usize, rows / 2, rows - 1] {
            let exact = top_k_cosine(&m, &norms, m.row(q), k, 1, |_| false);
            let approx = index.search(m.row(q), k, index.nlist());
            prop_assert_eq!(&approx, &exact);
        }
    }

    /// Poisoned rows (NaN, ±inf, zero-norm) behave through the ANN path
    /// exactly as through the exact path: sanitized to score 0.0, never
    /// outranking any positive-scoring row, at EVERY probe depth.
    #[test]
    fn adversarial_rows_never_surface(
        rows in 8usize..200,
        dim in 2usize..16,
        seed in 0u64..u64::MAX,
        poison in prop::collection::vec((0usize..200, 0u8..3), 1..6),
    ) {
        let mut m = random_matrix(rows, dim, seed);
        let mut poisoned = Vec::new();
        for &(r, kind) in &poison {
            let r = r % rows;
            match kind {
                0 => m.row_mut(r).fill(0.0),
                1 => m.row_mut(r)[r % dim] = f32::NAN,
                _ => m.row_mut(r)[r % dim] = f32::INFINITY,
            }
            poisoned.push(r);
        }
        let norms = m.row_norms();
        let index = IvfIndex::build(&m, &norms, IvfConfig::auto(rows).with_seed(seed), 1);

        // A clean query row (fall back to a constant vector if every row
        // got poisoned).
        let clean = (0..rows).find(|r| !poisoned.contains(r));
        let query: Vec<f32> = match clean {
            Some(r) => m.row(r).to_vec(),
            None => (0..dim).map(|c| (c as f32 + 1.0) * 0.1).collect(),
        };

        for probes in [1usize, index.nlist() / 2, index.nlist()] {
            let top = index.search(&query, rows, probes);
            for &(id, score) in &top {
                prop_assert!(score.is_finite(), "non-finite score {} for row {}", score, id);
                if poisoned.contains(&id) {
                    prop_assert!(score == 0.0, "poisoned row {} must score 0.0, got {}", id, score);
                }
            }
            // Sorted descending: a poisoned row can never precede a
            // positive-scoring clean row.
            for pair in top.windows(2) {
                prop_assert!(pair[0].1 >= pair[1].1, "ranking not descending");
            }
        }

        // And at full depth, bit-equal to the (already pinned) oracle.
        let exact = top_k_cosine(&m, &norms, &query, 10, 1, |_| false);
        prop_assert_eq!(index.search(&query, 10, index.nlist()), exact);
    }

    /// The recall gate: on clustered data — the shape served snapshots
    /// have — probing a quarter of the lists keeps recall@10 ≥ 0.95.
    #[test]
    fn recall_at_10_stays_above_095_at_quarter_probes(
        n in 1_500usize..3_000,
        dim_pick in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let dim = [8usize, 16, 32][dim_pick];
        let m = clustered_matrix(n, dim, 10, seed);
        let norms = m.row_norms();
        let config = IvfConfig::auto(n).with_seed(seed);
        let index = IvfIndex::build(&m, &norms, config, 1);
        let probes = index.nlist().div_ceil(4);
        let queries: Vec<usize> = (0..40).map(|i| i * n / 40).collect();
        let recall = recall_at_10(&index, &m, &norms, probes, &queries);
        prop_assert!(
            recall >= 0.95,
            "recall@10 {} with {}/{} probes over {} rows",
            recall, probes, index.nlist(), n
        );
    }
}

/// The same gate once at a fixed larger size, with the default probe
/// depth (an eighth of the lists) — the knob serving actually defaults to.
#[test]
fn default_probes_reach_gate_recall_on_clustered_data() {
    let n = 6_000;
    let m = clustered_matrix(n, 16, 12, 42);
    let norms = m.row_norms();
    let index = IvfIndex::build(&m, &norms, IvfConfig::auto(n), 1);
    let queries: Vec<usize> = (0..60).map(|i| i * n / 60).collect();
    let recall = recall_at_10(&index, &m, &norms, index.default_probes(), &queries);
    assert!(
        recall >= 0.95,
        "recall@10 {recall} at default probes {}/{}",
        index.default_probes(),
        index.nlist()
    );
}
