//! Concurrency + determinism suite for `retro_core::serve`.
//!
//! The serving contract under test:
//!
//! * a reader calling `EmbeddingService::nearest` / `Snapshot` queries is
//!   **never** blocked by a database writer or an in-flight refresh — the
//!   read path touches neither the database lock nor the session lock;
//! * readers only ever observe **complete** generations (catalog,
//!   embeddings and norm cache from one converged output — never a torn
//!   mix), and the generation number is **monotone** per observer;
//! * snapshot rankings are deterministic, `NaN`-free, and **bit-identical
//!   for every thread count** (the dot-scan partition never reorders a
//!   row's accumulation).
//!
//! The stress tests default to a few refresh rounds so `cargo test` stays
//! quick; CI raises `RETRO_SERVE_STRESS` for a longer soak.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use retro::core::serve::{EmbeddingService, SearchMode};
use retro::core::{Hyperparameters, RetroConfig};
use retro::embed::nn::top_k_cosine;
use retro::embed::EmbeddingSet;
use retro::store::{sql, Database, SharedDatabase, Value};

/// Stress-loop iteration count: default small, raised in CI via
/// `RETRO_SERVE_STRESS` (same env-gating idea as `RETRO_PAPER_SCALE`).
fn stress_rounds(default: usize) -> usize {
    std::env::var("RETRO_SERVE_STRESS").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn base() -> EmbeddingSet {
    // 40 tokens over 8 dims: enough vocabulary for the generated titles.
    let tokens: Vec<String> = (0..40).map(|i| format!("tok{i}")).collect();
    let vectors: Vec<Vec<f32>> =
        (0..40).map(|i| (0..8).map(|d| ((i * 7 + d * 3) as f32 * 0.37).sin()).collect()).collect();
    EmbeddingSet::new(tokens, vectors)
}

fn shared(n_movies: usize) -> SharedDatabase {
    let mut db = Database::new();
    sql::run_script(
        &mut db,
        "CREATE TABLE persons (id INTEGER PRIMARY KEY, name TEXT);
         CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT,
                              director_id INTEGER REFERENCES persons(id));",
    )
    .unwrap();
    for p in 0..4 {
        db.insert("persons", vec![Value::Int(p), Value::from(format!("tok{p} tok{}", p + 4))])
            .unwrap();
    }
    for m in 0..n_movies as i64 {
        db.insert("movies", vec![Value::Int(m), movie_title(m), Value::Int(m % 4)]).unwrap();
    }
    SharedDatabase::new(db)
}

fn service(n_movies: usize, threads: usize) -> Arc<EmbeddingService> {
    let config = RetroConfig::default()
        .with_params(Hyperparameters::paper_rn().with_threads(threads))
        .with_iterations(3);
    EmbeddingService::start(shared(n_movies), base(), config).unwrap()
}

/// A title unique per movie id (`movie{id}` is OOV and only disambiguates;
/// the `tok*` words anchor the value in the base vocabulary). Uniqueness
/// matters: the §3.3 catalog merges duplicate text values per column, so
/// colliding titles would not grow the snapshot.
fn movie_title(id: i64) -> Value {
    Value::from(format!("movie{id} tok{} tok{}", 8 + (id % 16), 24 + (id % 16)))
}

/// Insert one more movie through the shared handle.
fn insert_movie(db: &SharedDatabase, id: i64) {
    db.with_write(|db| {
        db.insert("movies", vec![Value::Int(id), movie_title(id), Value::Int(id % 4)]).map(|_| ())
    })
    .unwrap();
}

#[test]
fn readers_complete_while_the_database_write_guard_is_held() {
    let service = service(24, 2);
    let snap = service.snapshot();
    let query = snap.output().embeddings.row(0).to_vec();

    // Hold the database's EXCLUSIVE write guard: any read path that
    // touched the database lock would deadlock (same thread) or hang
    // (other threads). Queries must complete regardless.
    let guard = service.database().write();

    // Same thread: a db-lock dependency would deadlock right here.
    let direct = service.nearest(&query, 5, SearchMode::Exact);
    assert_eq!(direct.len(), 5);
    assert!(service.nearest_token("persons", "name", "tok0 tok4", 3, SearchMode::Exact).is_some());

    // Other threads: all queries must finish while the guard stays held.
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let service = Arc::clone(&service);
            let query = query.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let snap = service.snapshot();
                    let nn = snap.nearest(&query, 5, SearchMode::Exact);
                    assert_eq!(nn.len(), 5);
                }
            })
        })
        .collect();
    for handle in readers {
        handle.join().expect("reader must complete while the write guard is held");
    }
    drop(guard);
}

#[test]
fn concurrent_readers_observe_only_complete_monotone_generations() {
    let service = service(24, 1);
    let stop = Arc::new(AtomicBool::new(false));
    let rounds = stress_rounds(4);

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last_generation = 0u64;
                let mut observed = 0usize;
                // At least one observation even if the writer finishes
                // before this thread is first scheduled.
                while observed == 0 || !stop.load(Ordering::Acquire) {
                    let snap = service.snapshot();

                    // Monotone generations: never backwards.
                    assert!(
                        snap.generation() >= last_generation,
                        "generation went backwards: {} < {last_generation}",
                        snap.generation()
                    );
                    last_generation = snap.generation();

                    // No torn snapshot: catalog, matrix and norm cache all
                    // sized by the same converged output.
                    let rows = snap.output().embeddings.rows();
                    assert_eq!(snap.len(), rows, "catalog/matrix tear");
                    assert_eq!(snap.norms().len(), rows, "norm-cache tear");
                    assert_eq!(snap.output().problem.len(), rows, "problem tear");

                    // Queries on the snapshot are internally consistent.
                    let nn = snap.nearest(snap.output().embeddings.row(0), 8, SearchMode::Exact);
                    assert!(nn.iter().all(|&(id, s)| id < rows && s.is_finite()));
                    observed += 1;
                }
                observed
            })
        })
        .collect();

    // Writer: grow the database and refresh, `rounds` times.
    for round in 0..rounds {
        insert_movie(service.database(), 1_000 + round as i64);
        let generation = service.refresh().unwrap();
        assert_eq!(generation, round as u64 + 2, "one generation per refresh");
    }

    stop.store(true, Ordering::Release);
    for handle in readers {
        let observed = handle.join().expect("reader panicked — a snapshot invariant broke");
        assert!(observed > 0, "reader never observed a snapshot");
    }
    assert_eq!(service.generation(), rounds as u64 + 1);
    assert_eq!(service.snapshot().len(), 24 + 4 + rounds);
}

#[test]
fn refresh_during_reads_keeps_old_snapshot_intact() {
    let service = service(16, 1);
    let old = service.snapshot();
    let before: Vec<f32> = old.output().embeddings.as_slice().to_vec();
    for round in 0..stress_rounds(3) {
        insert_movie(service.database(), 2_000 + round as i64);
        service.refresh().unwrap();
    }
    // The pinned generation is bit-identical to what it was at publish.
    assert_eq!(old.generation(), 1);
    assert_eq!(old.output().embeddings.as_slice(), &before[..]);
}

#[test]
fn snapshot_rankings_are_bit_identical_across_thread_counts() {
    // Same data, same converged output (the solver is thread-invariant —
    // `tests/solver_determinism.rs`), so snapshots only differ in scan
    // width. Rankings must be bit-identical.
    let reference = service(32, 1);
    let ref_snap = reference.snapshot();
    let queries: Vec<Vec<f32>> =
        (0..8).map(|i| ref_snap.output().embeddings.row(i).to_vec()).collect();
    let expected: Vec<_> =
        queries.iter().map(|q| ref_snap.nearest(q, 10, SearchMode::Exact)).collect();

    for threads in [2usize, 8] {
        let snap = service(32, threads).snapshot();
        assert_eq!(
            snap.output().embeddings.as_slice(),
            ref_snap.output().embeddings.as_slice(),
            "solver output must be thread-invariant"
        );
        for (query, want) in queries.iter().zip(&expected) {
            assert_eq!(
                snap.nearest(query, 10, SearchMode::Exact),
                *want,
                "snapshot ranking diverged at {threads} threads"
            );
        }
    }

    // The shared helper itself, across thread counts, on the same matrix.
    let m = ref_snap.output();
    let norms = m.embeddings.row_norms();
    for query in &queries {
        let serial = top_k_cosine(&m.embeddings, &norms, query, 10, 1, |_| false);
        for threads in [2usize, 3, 8] {
            assert_eq!(
                serial,
                top_k_cosine(&m.embeddings, &norms, query, 10, threads, |_| false),
                "top_k_cosine diverged at {threads} threads"
            );
        }
    }
}

/// A write burst must coalesce, not fan out: however many inserts land
/// while a refresh is in flight, the worker folds them into the next
/// refresh instead of queueing one refresh per write. This is the
/// refresh-storm regression — the seed behaviour re-solved the world once
/// per write version.
#[test]
fn write_burst_coalesces_into_few_refreshes() {
    let service = service(24, 2);
    let worker = service.spawn_refresher(Duration::from_millis(1));
    let writes = 8 * stress_rounds(4);

    // Hammer inserts from a writer thread while the worker refreshes.
    let writer = {
        let db = service.database().clone();
        std::thread::spawn(move || {
            for w in 0..writes {
                insert_movie(&db, 4_000 + w as i64);
            }
        })
    };
    writer.join().unwrap();

    // One settle pass clears the staleness left by the tail of the burst.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while service.out_of_date() || service.snapshot().len() != 24 + 4 + writes {
        assert!(
            std::time::Instant::now() < deadline,
            "worker never caught up: snapshot has {} values, want {}",
            service.snapshot().len(),
            24 + 4 + writes
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    worker.stop();

    // The coalescing evidence: refreshes ran per *burst*, not per write.
    // (1 initial publish + the worker's catch-up refreshes; a strictly
    // serial one-refresh-per-write worker would need `writes` + 1.)
    let published = service.refreshes_published();
    assert!(
        published < 1 + writes as u64,
        "refresh storm: {published} refreshes for {writes} writes"
    );
    // And the final state is complete: every write made it into the
    // published snapshot despite the coalescing.
    assert_eq!(service.snapshot().len(), 24 + 4 + writes);
}

#[test]
fn background_worker_converges_under_concurrent_writes() {
    let service = service(16, 2);
    let worker = service.spawn_refresher(Duration::from_millis(1));
    let rounds = stress_rounds(4);

    for round in 0..rounds {
        insert_movie(service.database(), 3_000 + round as i64);
        std::thread::sleep(Duration::from_millis(2));
    }

    // Eventually the published snapshot catches up with every write.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while service.out_of_date() || service.snapshot().len() != 16 + 4 + rounds {
        assert!(
            std::time::Instant::now() < deadline,
            "worker never caught up: snapshot has {} values, want {}",
            service.snapshot().len(),
            16 + 4 + rounds
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    worker.stop();
}
