//! Planner/index equivalence harness for the `retro_store` SQL subsystem
//! (`docs/QUERY_PLANNING.md`).
//!
//! The contract under test: for a randomized DML sequence and a fixed
//! query suite, executing every statement through the cost-based planner
//! ([`sql::PlanMode::Planned`] — pk lookups, secondary-index probes,
//! re-ordered index-driven joins) produces **bit-identical** results to
//! forcing full scans and declared-order hash joins on a second database
//! ([`sql::PlanMode::ForceScan`]) — same rows in the same order, same
//! column headers, and the same first error per statement. Indexes are an
//! access path, never a semantic.
//!
//! A third leg pins recovery: the same sequence applied to a durable
//! database, then recovered from its WAL + snapshot files, must answer the
//! whole query suite identically again (in both plan modes) — declared
//! secondary indexes are part of the recovered state, not a lucky cache.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use retro::store::sql::{self, QueryResult};
use retro::store::Database;

static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory per test case (no tempfile crate in-tree).
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new() -> Self {
        let dir = std::env::temp_dir().join(format!(
            "retro_index_eq_{}_{}",
            std::process::id(),
            DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Self(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// parents ← children through a validated FK (auto-indexed), plus two
/// user-declared secondary indexes — every access path the planner can
/// choose (pk, FK index, declared index, scan) is reachable.
fn create_schema(db: &mut Database) {
    sql::run_script(
        db,
        "CREATE TABLE parents (id INTEGER PRIMARY KEY, name TEXT, score REAL);
         CREATE TABLE children (id INTEGER PRIMARY KEY, label TEXT,
                                parent_id INTEGER REFERENCES parents(id));",
    )
    .unwrap();
    assert!(db.create_index("parents", "name").unwrap());
    assert!(db.create_index("children", "label").unwrap());
}

/// One decoded mutation step (all SQL, so both plan modes exercise the
/// same parse → plan → execute path the public API uses).
#[derive(Debug)]
enum Op {
    InsertParent { pk: i64, tag: u8, null_score: bool },
    InsertChild { pk: i64, fk: i64, tag: u8 },
    RenameParent { pk: i64, tag: u8 },
    RelabelByParent { fk: i64, tag: u8 },
    DeleteChild { pk: i64 },
    DeleteParent { pk: i64 },
    ClearScores { threshold: i64 },
    DeleteByLabel { tag: u8 },
}

fn decode(raw: &(u8, i64, u8, i64)) -> Op {
    let &(op, k, v, j) = raw;
    match op {
        0 | 1 => Op::InsertParent { pk: k, tag: v % 4, null_score: j % 3 == 0 },
        2 | 3 => Op::InsertChild { pk: k, fk: j, tag: v % 3 },
        4 => Op::RenameParent { pk: k, tag: v % 4 },
        5 => Op::RelabelByParent { fk: j, tag: v % 3 },
        6 => Op::DeleteChild { pk: k },
        7 => Op::DeleteParent { pk: k },
        8 => Op::ClearScores { threshold: j },
        _ => Op::DeleteByLabel { tag: v % 3 },
    }
}

impl Op {
    fn to_sql(&self) -> String {
        match self {
            Op::InsertParent { pk, tag, null_score } => {
                let score = if *null_score { "NULL".to_owned() } else { format!("{}.5", pk % 7) };
                format!("INSERT INTO parents VALUES ({pk}, 'p{tag}', {score})")
            }
            Op::InsertChild { pk, fk, tag } => {
                format!("INSERT INTO children VALUES ({pk}, 'c{tag}', {fk})")
            }
            Op::RenameParent { pk, tag } => {
                format!("UPDATE parents SET name = 'p{tag}' WHERE id = {pk}")
            }
            Op::RelabelByParent { fk, tag } => {
                format!("UPDATE children SET label = 'c{tag}' WHERE parent_id = {fk}")
            }
            Op::DeleteChild { pk } => format!("DELETE FROM children WHERE id = {pk}"),
            Op::DeleteParent { pk } => format!("DELETE FROM parents WHERE id = {pk}"),
            Op::ClearScores { threshold } => {
                format!("UPDATE parents SET score = NULL WHERE score > {threshold}.0")
            }
            Op::DeleteByLabel { tag } => format!("DELETE FROM children WHERE label = 'c{tag}'"),
        }
    }
}

/// Parse and execute one statement under an explicit plan mode.
fn run_mode(db: &mut Database, text: &str, mode: sql::PlanMode) -> Result<QueryResult, String> {
    let stmt = sql::parse_statement(text).map_err(|e| e.to_string())?;
    sql::execute_with(db, &stmt, mode).map_err(|e| e.to_string())
}

/// The fixed read suite: every planner feature (point lookup, secondary
/// index, FK join in both directions, pushdown, residual predicates,
/// IS NULL, ORDER BY, LIMIT, COUNT(*)) plus queries *without* ORDER BY,
/// which pin the plan-independent canonical row order.
fn query_suite(probe_pk: i64, probe_tag: u8) -> Vec<String> {
    vec![
        "SELECT * FROM parents".into(),
        "SELECT * FROM children".into(),
        format!("SELECT name, score FROM parents WHERE id = {probe_pk}"),
        format!("SELECT id FROM parents WHERE name = 'p{}'", probe_tag % 4),
        format!("SELECT id FROM children WHERE label = 'c{}'", probe_tag % 3),
        "SELECT p.name, c.label FROM children c JOIN parents p ON c.parent_id = p.id".into(),
        "SELECT c.id FROM parents p JOIN children c ON p.id = c.parent_id \
         WHERE p.score IS NOT NULL"
            .into(),
        format!(
            "SELECT c.label, p.name FROM children c JOIN parents p ON c.parent_id = p.id \
             WHERE p.name = 'p{}' AND c.label != 'c9'",
            probe_tag % 4
        ),
        "SELECT a.id, b.id FROM children a JOIN children b ON a.parent_id = b.parent_id \
         WHERE a.id < b.id"
            .into(),
        "SELECT name FROM parents WHERE score IS NULL ORDER BY name DESC LIMIT 4".into(),
        "SELECT id, score FROM parents WHERE score >= 1.5 ORDER BY id LIMIT 5".into(),
        format!("SELECT COUNT(*) FROM children WHERE label = 'c{}'", probe_tag % 3),
        "SELECT COUNT(*) FROM children c JOIN parents p ON c.parent_id = p.id".into(),
    ]
}

fn assert_same_result(
    label: &str,
    text: &str,
    a: &Result<QueryResult, String>,
    b: &Result<QueryResult, String>,
) -> Result<(), TestCaseError> {
    match (a, b) {
        (Ok(ra), Ok(rb)) => {
            prop_assert!(
                ra.columns == rb.columns,
                "{}: columns differ for {}: {:?} != {:?}",
                label,
                text,
                ra.columns,
                rb.columns
            );
            prop_assert!(
                ra.rows == rb.rows,
                "{}: rows differ for {}: {:?} != {:?}",
                label,
                text,
                ra.rows,
                rb.rows
            );
        }
        (Err(ea), Err(eb)) => {
            prop_assert!(ea == eb, "{}: errors differ for {}: {} != {}", label, text, ea, eb);
        }
        (a, b) => {
            return Err(TestCaseError::Fail(format!(
                "{label}: outcome differs for {text}: planned={a:?} forced={b:?}"
            )));
        }
    }
    Ok(())
}

/// Run the full suite against two databases under the given modes and
/// assert bit-identical outcomes.
fn check_suite(
    label: &str,
    left: &mut Database,
    left_mode: sql::PlanMode,
    right: &mut Database,
    right_mode: sql::PlanMode,
    probe_pk: i64,
    probe_tag: u8,
) -> Result<(), TestCaseError> {
    for q in query_suite(probe_pk, probe_tag) {
        let a = run_mode(left, &q, left_mode);
        let b = run_mode(right, &q, right_mode);
        assert_same_result(label, &q, &a, &b)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Planner vs forced scan over a random DML history, then again after
    /// WAL-replay recovery of the same history.
    #[test]
    fn planned_execution_is_bit_identical_to_forced_scans(
        raw_ops in prop::collection::vec((0u8..10, 0i64..12, 0u8..6, 0i64..12), 1..28)
    ) {
        let mut planned = Database::new();
        let mut forced = Database::new();
        create_schema(&mut planned);
        create_schema(&mut forced);

        let scratch = ScratchDir::new();
        let mut durable = Database::open(&scratch.0).unwrap();
        create_schema(&mut durable);

        for (step, raw) in raw_ops.iter().enumerate() {
            let op = decode(raw);
            let text = op.to_sql();
            let a = run_mode(&mut planned, &text, sql::PlanMode::Planned);
            let b = run_mode(&mut forced, &text, sql::PlanMode::ForceScan);
            assert_same_result("mutation", &text, &a, &b)?;
            let d = run_mode(&mut durable, &text, sql::PlanMode::Planned);
            assert_same_result("durable mutation", &text, &a, &d)?;

            // Reads agree after every mutation, not just at the end —
            // index maintenance has to be correct mid-history.
            let (_, k, v, _) = *raw;
            check_suite(
                &format!("step {step}"),
                &mut planned, sql::PlanMode::Planned,
                &mut forced, sql::PlanMode::ForceScan,
                k, v,
            )?;
        }

        // RESTRICT enforcement during the history never fell back to a
        // table scan: the FK index carried every check.
        prop_assert_eq!(planned.fk_scan_fallbacks(), 0);

        // ── WAL-replay leg ────────────────────────────────────────────
        // Recover the durable history from its files; the recovered
        // database must answer the whole suite identically to the live
        // in-memory one, under both plan modes.
        drop(durable);
        let mut recovered = Database::recover(&scratch.0).unwrap();
        check_suite(
            "recovered/planned",
            &mut recovered, sql::PlanMode::Planned,
            &mut planned, sql::PlanMode::Planned,
            5, 2,
        )?;
        check_suite(
            "recovered/forced-scan",
            &mut recovered, sql::PlanMode::ForceScan,
            &mut planned, sql::PlanMode::Planned,
            5, 2,
        )?;
        // The declared indexes came back as indexes, not just as data:
        // re-declaring reports "already indexed".
        prop_assert_eq!(recovered.create_index("parents", "name").unwrap(), false);
        prop_assert_eq!(recovered.create_index("children", "label").unwrap(), false);
        prop_assert_eq!(recovered.fk_scan_fallbacks(), 0);
    }
}
