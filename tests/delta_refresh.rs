//! Delta-vs-full refresh equivalence: the accuracy contract behind
//! delta-scoped incremental maintenance (`docs/INCREMENTAL.md`).
//!
//! A delta refresh re-solves only the rows whose neighbourhood changed and
//! freezes everything else, so it is *not* bit-identical to a full refresh
//! — but it must stay within a bounded drift of one. This suite pins that
//! bound (`L∞ ≤ 0.05` per value) over randomized insert / update / delete
//! sequences, for both solvers, at 1 and 8 threads, with one session
//! refreshing delta-scoped and a clone of the same session always taking
//! the full path. It also pins the dispatch itself: single inserts take
//! the delta path, numeric-only updates republish without solving, and
//! deletes / relational updates / change-log overflow fall back to the
//! full path (where both sessions must agree *bit-identically*).

use proptest::prelude::*;
use retro::core::{IncrementalRetro, RefreshKind, RetroConfig, RetroOutput, Solver};
use retro::embed::EmbeddingSet;
use retro::store::{sql, Database, Value};

const WORDS: [&str; 12] = [
    "alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta", "iota", "kappa", "film",
    "story",
];

fn base() -> EmbeddingSet {
    // Every WORDS token plus the language codes, with deterministic
    // distinct vectors; numeric name suffixes stay out-of-vocabulary,
    // which is the realistic shape (ids and codes rarely tokenize).
    let mut tokens: Vec<String> = WORDS.iter().map(|w| (*w).to_owned()).collect();
    tokens.extend(["en".to_owned(), "fr".to_owned(), "de".to_owned()]);
    let vectors = (0..tokens.len())
        .map(|i| (0..4).map(|d| ((i * 7 + d * 13) % 17) as f32 / 17.0 - 0.5).collect())
        .collect();
    EmbeddingSet::new(tokens, vectors)
}

/// A database with every relation kind the extractor knows: row-wise
/// (movies.title ~ movies.lang), FK (movies ~ persons), and m:n
/// (movie_genre), plus a free-standing table for scoped deletes and a
/// numeric column for irrelevant updates.
struct Sim {
    db: Database,
    movie_ids: Vec<i64>,
    person_ids: Vec<i64>,
    genre_ids: Vec<i64>,
    next_id: i64,
}

impl Sim {
    fn new() -> Self {
        let mut db = Database::new();
        sql::run_script(
            &mut db,
            "CREATE TABLE persons (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE genres (id INTEGER PRIMARY KEY, name TEXT);
             CREATE TABLE notes (id INTEGER PRIMARY KEY, body TEXT);
             CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT, lang TEXT,
                                  budget FLOAT,
                                  director_id INTEGER REFERENCES persons(id));
             CREATE TABLE movie_genre (movie_id INTEGER REFERENCES movies(id),
                                       genre_id INTEGER REFERENCES genres(id));",
        )
        .expect("schema");
        let mut sim =
            Sim { db, movie_ids: vec![], person_ids: vec![], genre_ids: vec![], next_id: 1 };
        // Large enough that a whole op sequence stays a small fraction of
        // the graph: bounded drift is a *small-delta* contract, and the
        // bench measures single-row inserts against thousands of rows.
        for k in 0..20 {
            sim.insert_person(k);
        }
        for k in 0..8 {
            let id = sim.fresh_id();
            sim.db
                .insert("genres", vec![Value::Int(id), word_name(k, "genre")])
                .expect("genre row");
            sim.genre_ids.push(id);
        }
        for k in 0..144 {
            sim.insert_movie(k);
        }
        for k in 0..6 {
            let id = sim.fresh_id();
            sim.db.insert("notes", vec![Value::Int(id), word_name(k, "note")]).expect("note row");
        }
        sim
    }

    fn fresh_id(&mut self) -> i64 {
        self.next_id += 1;
        self.next_id
    }

    fn insert_person(&mut self, k: usize) {
        let id = self.fresh_id();
        self.db.insert("persons", vec![Value::Int(id), word_name(k, "person")]).expect("person");
        self.person_ids.push(id);
    }

    fn insert_movie(&mut self, k: usize) {
        let id = self.fresh_id();
        let lang = ["en", "fr", "de"][k % 3];
        let director = self.person_ids[k % self.person_ids.len()];
        self.db
            .insert(
                "movies",
                vec![
                    Value::Int(id),
                    word_name(k, "film"),
                    Value::from(lang),
                    Value::Float(k as f64),
                    Value::Int(director),
                ],
            )
            .expect("movie");
        self.movie_ids.push(id);
        self.db
            .insert(
                "movie_genre",
                vec![Value::Int(id), Value::Int(self.genre_ids[k % self.genre_ids.len()])],
            )
            .expect("link");
    }

    /// Apply the operation encoded by `b`: mostly inserts (the delta
    /// path), with numeric updates (no-change), relational updates and
    /// deletes (full fallback) mixed in.
    fn apply(&mut self, b: u8) {
        let k = self.next_id as usize;
        match b % 8 {
            0..=2 => self.insert_movie(k),
            3 => self.insert_person(k),
            4 => {
                let movie = self.movie_ids[b as usize % self.movie_ids.len()];
                let genre = self.genre_ids[(b as usize / 8) % self.genre_ids.len()];
                self.db
                    .insert("movie_genre", vec![Value::Int(movie), Value::Int(genre)])
                    .expect("link");
            }
            5 => {
                let row = b as usize % self.db.table("movies").expect("movies").len();
                self.db
                    .update_rows("movies", &[(row, 3, Value::Float(f64::from(b)))])
                    .expect("numeric update");
            }
            6 => {
                let row = b as usize % self.db.table("movies").expect("movies").len();
                let director = self.person_ids[(b as usize / 8) % self.person_ids.len()];
                self.db
                    .update_rows("movies", &[(row, 4, Value::Int(director))])
                    .expect("relational update");
            }
            _ => {
                let notes = self.db.table("notes").expect("notes").len();
                if notes > 0 {
                    self.db.delete_rows("notes", &[b as usize % notes]).expect("delete");
                }
            }
        }
    }
}

fn word_name(k: usize, noun: &str) -> Value {
    Value::from(format!("{} {noun} {k}", WORDS[k % WORDS.len()]))
}

fn config(solver: Solver, threads: usize) -> RetroConfig {
    // The drift contract assumes the seed state is converged: a delta
    // refresh freezes clean rows where a full refresh re-iterates them,
    // so any leftover seed movement shows up as delta-vs-full drift.
    let cfg = RetroConfig::default().with_solver(solver);
    let params = cfg.params.with_threads(threads);
    cfg.with_params(params).with_iterations(40)
}

/// Max per-value L∞ between two outputs, mapping by (table, column, text)
/// — value *ids* legitimately differ between a delta-extended catalog and
/// a re-extracted one. Also asserts the two cover the same value set.
fn max_drift(a: &RetroOutput, b: &RetroOutput) -> f32 {
    assert_eq!(a.catalog.len(), b.catalog.len(), "outputs cover different value sets");
    let mut worst = 0.0f32;
    for (id, cat, text) in b.catalog.iter() {
        let category = &b.catalog.categories()[cat as usize];
        let row = a
            .vector(&category.table, &category.column, text)
            .unwrap_or_else(|| panic!("{}.{} = '{text}' missing", category.table, category.column));
        for (x, y) in row.iter().zip(b.embeddings.row(id)) {
            worst = worst.max((x - y).abs());
        }
    }
    worst
}

fn run_sequence(solver: Solver, threads: usize, ops: &[u8]) {
    let mut sim = Sim::new();
    let base = base();
    let mut delta = IncrementalRetro::new(config(solver, threads));
    // Let every refresh settle: residual movement in either session reads
    // as drift, and the contract is about the fixed points, not about
    // partially-converged intermediate states.
    delta.refresh_iterations = 15;
    delta.full_run(&sim.db, &base).expect("seed run");
    let mut always_full = delta.clone();
    for &b in ops {
        sim.apply(b);
        // The per-refresh contract: from the *same* prior state, the delta
        // path lands within 0.05 of what the full path would compute.
        let mut reference = delta.clone();
        delta.refresh(&sim.db, &base).expect("delta-dispatched refresh");
        reference.refresh_full(&sim.db, &base).expect("full refresh");
        let step = max_drift(delta.current().expect("state"), reference.current().expect("state"));
        assert!(
            step <= 0.05,
            "delta drifted {step} from a full refresh of the same state \
             (solver {solver:?}, threads {threads}, op {b})"
        );
        always_full.refresh_full(&sim.db, &base).expect("full refresh");
    }
    // Accumulation guard: per-step errors must not compound linearly. A
    // session that only ever took the delta path stays near one that only
    // ever took the full path, even after a whole burst of changes.
    let total = max_drift(delta.current().expect("state"), always_full.current().expect("state"));
    assert!(
        total <= 0.15,
        "accumulated drift {total} after {} ops (solver {solver:?}, threads {threads})",
        ops.len()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn delta_matches_full_refresh_rn(ops in prop::collection::vec(0u8..=255, 1..9)) {
        run_sequence(Solver::Rn, 1, &ops);
        run_sequence(Solver::Rn, 8, &ops);
    }

    #[test]
    fn delta_matches_full_refresh_ro(ops in prop::collection::vec(0u8..=255, 1..9)) {
        run_sequence(Solver::Ro, 1, &ops);
        run_sequence(Solver::Ro, 8, &ops);
    }
}

#[test]
fn single_insert_takes_the_delta_path_and_stays_close() {
    for solver in [Solver::Rn, Solver::Ro] {
        let mut sim = Sim::new();
        let base = base();
        let mut session = IncrementalRetro::new(config(solver, 1));
        session.full_run(&sim.db, &base).expect("seed run");
        let mut reference = session.clone();
        sim.insert_movie(900);
        session.refresh(&sim.db, &base).expect("refresh");
        assert_eq!(session.last_refresh(), Some(RefreshKind::Delta), "{solver:?}");
        reference.refresh_full(&sim.db, &base).expect("refresh");
        let drift = max_drift(session.current().unwrap(), reference.current().unwrap());
        assert!(drift <= 0.05, "{solver:?} drifted {drift}");
    }
}

#[test]
fn numeric_only_update_republishes_without_solving() {
    let mut sim = Sim::new();
    let base = base();
    let mut session = IncrementalRetro::new(config(Solver::Rn, 1));
    session.full_run(&sim.db, &base).expect("seed run");
    let before = session.current().unwrap().embeddings.clone();
    sim.db.update_rows("movies", &[(0, 3, Value::Float(1e9))]).expect("update");
    session.refresh(&sim.db, &base).expect("refresh");
    assert_eq!(session.last_refresh(), Some(RefreshKind::NoChange));
    assert_eq!(session.current().unwrap().embeddings.max_abs_diff(&before), 0.0);
}

/// When the change log overflows, the delta session must fall back to the
/// full path — and then agree with an always-full session bit for bit,
/// because both run the identical warm full refresh from identical state.
#[test]
fn change_log_overflow_falls_back_to_an_exact_full_refresh() {
    let mut sim = Sim::new();
    sim.db.set_change_log_capacity(2);
    let base = base();
    let mut delta = IncrementalRetro::new(config(Solver::Rn, 1));
    delta.full_run(&sim.db, &base).expect("seed run");
    let mut full = delta.clone();
    for k in 0..5 {
        sim.insert_movie(500 + k);
    }
    delta.refresh(&sim.db, &base).expect("refresh");
    assert_eq!(delta.last_refresh(), Some(RefreshKind::Full), "overflowed log must force Full");
    full.refresh_full(&sim.db, &base).expect("refresh");
    assert_eq!(
        delta.current().unwrap().embeddings.max_abs_diff(&full.current().unwrap().embeddings),
        0.0,
        "the fallback must be the same full refresh, not an approximation"
    );
}

#[test]
fn zero_dirty_budget_forces_the_full_path() {
    let mut sim = Sim::new();
    let base = base();
    let mut session = IncrementalRetro::new(config(Solver::Rn, 1));
    session.delta_max_dirty_fraction = 0.0;
    session.full_run(&sim.db, &base).expect("seed run");
    sim.insert_movie(700);
    session.refresh(&sim.db, &base).expect("refresh");
    assert_eq!(session.last_refresh(), Some(RefreshKind::Full));
}
