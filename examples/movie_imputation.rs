//! Missing-value imputation on the synthetic TMDB dataset: predict a
//! movie's `original_language` from its retrofitted title embedding and
//! write the predictions back into the database (the §5.5.2 workflow).
//!
//! ```text
//! cargo run --release --example movie_imputation
//! ```

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use retro::datasets::{TmdbConfig, TmdbDataset};
use retro::eval::tasks::gather_normalized;
use retro::eval::{EmbeddingKind, EmbeddingSuite, NetProfile, SuiteConfig};
use retro::linalg::Matrix;
use retro::store::Value;

fn main() {
    // Generate a database in which some movies will "lose" their language.
    let data = TmdbDataset::generate(TmdbConfig { n_movies: 300, ..TmdbConfig::default() });
    let languages = retro::datasets::tmdb::LANGUAGES;

    // Train embeddings with the label column ablated — the imputer must not
    // see the answers.
    let suite = EmbeddingSuite::build(
        &data.db,
        &data.base,
        &SuiteConfig::default().skip_column("movies", "original_language"),
        &[EmbeddingKind::Rn],
    );
    let matrix = suite.matrix(EmbeddingKind::Rn);

    // Pretend 20% of the movies have NULL language; train on the rest.
    let mut rng = StdRng::seed_from_u64(2024);
    let mut ids: Vec<usize> = (0..data.movie_titles.len()).collect();
    ids.shuffle(&mut rng);
    let n_missing = ids.len() / 5;
    let (missing, known) = ids.split_at(n_missing);

    let row_of = |m: usize| {
        suite.catalog.lookup("movies", "title", &data.movie_titles[m]).expect("title in catalog")
    };
    let label_of =
        |m: usize| languages.iter().position(|l| *l == data.movie_language[m]).expect("language");

    let train_rows: Vec<usize> = known.iter().map(|&m| row_of(m)).collect();
    let x_train = gather_normalized(matrix, &train_rows);
    let y_train = Matrix::from_rows(
        &known
            .iter()
            .map(|&m| {
                let mut onehot = vec![0.0f32; languages.len()];
                onehot[label_of(m)] = 1.0;
                onehot
            })
            .collect::<Vec<_>>(),
    );

    let profile = NetProfile::fast(64);
    let mut net = profile.build_classifier(matrix.cols(), languages.len(), 7);
    net.train(&x_train, &y_train, profile.train);

    // Impute the missing values and write them back to the movies table.
    let missing_rows: Vec<usize> = missing.iter().map(|&m| row_of(m)).collect();
    let x_missing = gather_normalized(matrix, &missing_rows);
    let predictions = net.predict_classes(&x_missing);

    let mut db = data.db.clone();
    let lang_col = db
        .table("movies")
        .expect("movies")
        .schema()
        .column_index("original_language")
        .expect("column");
    let mut correct = 0;
    let mut updates = Vec::with_capacity(missing.len());
    for (k, &m) in missing.iter().enumerate() {
        let predicted = languages[predictions[k]];
        if predicted == data.movie_language[m] {
            correct += 1;
        }
        updates.push((m, lang_col, Value::from(predicted)));
    }
    // One batched write-back: a single change-log record (and a single
    // write-version bump) instead of one spurious whole-table
    // invalidation per cell.
    db.update_rows("movies", &updates).expect("write back");
    println!(
        "imputed {} missing languages; {} / {} correct ({:.1}%)",
        missing.len(),
        correct,
        missing.len(),
        100.0 * correct as f64 / missing.len() as f64
    );

    // A few concrete examples.
    for &m in missing.iter().take(5) {
        println!(
            "  movie {:<28} true: {:<3} imputed: {}",
            data.movie_titles[m],
            data.movie_language[m],
            db.table("movies").expect("movies").row(m).expect("row")[lang_col]
        );
    }
}
