//! Link prediction: recover ablated movie–genre edges (the §5.7 data
//! integration task). The movie_genre relation is removed before
//! retrofitting; a two-tower network then predicts which (movie, genre)
//! pairs were real.
//!
//! ```text
//! cargo run --release --example link_prediction
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use retro::datasets::tmdb::GENRES;
use retro::datasets::{TmdbConfig, TmdbDataset};
use retro::eval::tasks::link::{run_link_prediction, EdgeSample, LinkProfile};
use retro::eval::{EmbeddingKind, EmbeddingSuite, SuiteConfig};

fn main() {
    // 600 movies, matching fig14: below ~500 the ablated-relation signal
    // is too thin for RN to separate reliably (RO degrades more slowly).
    let data = TmdbDataset::generate(TmdbConfig { n_movies: 600, ..TmdbConfig::default() });

    // Ablate the relation we want to predict.
    let suite = EmbeddingSuite::build(
        &data.db,
        &data.base,
        &SuiteConfig::default().skip_relation("genres.name"),
        &[EmbeddingKind::Pv, EmbeddingKind::Ro, EmbeddingKind::Rn],
    );

    // Candidate edges: all true pairs + equally many sampled negatives.
    let mut rng = StdRng::seed_from_u64(99);
    let movie_rows: Vec<usize> = data
        .movie_titles
        .iter()
        .map(|t| suite.catalog.lookup("movies", "title", t).expect("title"))
        .collect();
    let genre_rows: Vec<usize> =
        GENRES.iter().map(|g| suite.catalog.lookup("genres", "name", g).expect("genre")).collect();
    let mut edges = Vec::new();
    for (m, genres) in data.movie_genres.iter().enumerate() {
        for &g in genres {
            edges.push(EdgeSample { source: m, target: g, exists: true });
        }
    }
    let n_pos = edges.len();
    while edges.len() < 2 * n_pos {
        let m = rng.gen_range(0..data.movie_titles.len());
        let g = rng.gen_range(0..GENRES.len());
        if !data.movie_genres[m].contains(&g) {
            edges.push(EdgeSample { source: m, target: g, exists: false });
        }
    }

    let train_n = edges.len() * 6 / 10;
    let test_n = edges.len() * 3 / 10;
    println!("{} candidate edges ({n_pos} true), train {train_n} / test {test_n}", edges.len());

    for kind in [EmbeddingKind::Pv, EmbeddingKind::Ro, EmbeddingKind::Rn] {
        let matrix = suite.matrix(kind);
        let sources = matrix.select_rows(&movie_rows);
        let targets = matrix.select_rows(&genre_rows);
        let accs = run_link_prediction(
            &sources,
            &targets,
            &edges,
            train_n,
            test_n,
            5,
            &LinkProfile::fast(64),
            5,
        );
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        println!("{}: link-prediction accuracy {:.3}", kind.label(), mean);
    }
    println!(
        "expected: RO clearly above PV, RN in between — relational retrofitting \
         encodes the ablated schema edge (fig14_link_prediction runs the full comparison)"
    );
}
