//! Domain-specific similarity queries over retrofitted embeddings — the
//! FREDDY-style use case the paper's introduction motivates: "which apps
//! are most similar to this one *in the context of my database*?"
//!
//! Compares the neighbourhoods produced by plain word vectors (PV) against
//! relational retrofitting (RN): PV neighbours share surface tokens, RN
//! neighbours share categories and review audiences.
//!
//! ```text
//! cargo run --release --example similarity_search
//! ```

use retro::datasets::{gplay::CATEGORIES, GooglePlayConfig, GooglePlayDataset};
use retro::eval::{EmbeddingKind, EmbeddingSuite, SuiteConfig};
use retro::linalg::vector;

fn main() {
    let data = GooglePlayDataset::generate(GooglePlayConfig {
        n_apps: 250,
        ..GooglePlayConfig::default()
    });
    let suite = EmbeddingSuite::build(
        &data.db,
        &data.base,
        &SuiteConfig::default(),
        &[EmbeddingKind::Pv, EmbeddingKind::Rn],
    );

    // Pick a few query apps and print their top neighbours under both
    // embeddings, with their true categories for context.
    let category_of = |name: &str| {
        data.app_names
            .iter()
            .position(|n| n == name)
            .map(|a| CATEGORIES[data.app_category[a]])
            .unwrap_or("?")
    };

    for query in data.app_names.iter().take(3) {
        println!("query app: {query}  [{}]", category_of(query));
        for kind in [EmbeddingKind::Pv, EmbeddingKind::Rn] {
            let matrix = suite.matrix(kind);
            let qid = suite.catalog.lookup("apps", "name", query).expect("app");
            // Rank other apps by cosine similarity.
            let mut scored: Vec<(usize, f32)> = data
                .app_names
                .iter()
                .filter(|n| *n != query)
                .filter_map(|n| suite.catalog.lookup("apps", "name", n))
                .map(|id| (id, vector::cosine(matrix.row(qid), matrix.row(id))))
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));

            println!("  {} neighbours:", kind.label());
            let mut same_category = 0;
            for (id, score) in scored.iter().take(5) {
                let name = suite.catalog.text(*id);
                let cat = category_of(name);
                if cat == category_of(query) {
                    same_category += 1;
                }
                println!("    {score:+.3}  {name:<30} [{cat}]");
            }
            println!("    ({same_category}/5 share the query's category)");
        }
        println!();
    }
    println!("expected: RN neighbourhoods are category-coherent; PV's follow surface tokens");
}
