//! Quickstart: build a small movie database with SQL, retrofit embeddings
//! against a word embedding, and query learned vectors.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use retro::core::{Retro, RetroConfig};
use retro::embed::text_format;
use retro::store::{sql, Database};

fn main() {
    // 1) A relational database — schema + data through the SQL layer.
    let mut db = Database::new();
    sql::run_script(
        &mut db,
        "CREATE TABLE persons (id INTEGER PRIMARY KEY, name TEXT);
         CREATE TABLE movies (id INTEGER PRIMARY KEY, title TEXT,
                              director_id INTEGER REFERENCES persons(id));
         INSERT INTO persons VALUES (1, 'luc besson'), (2, 'ridley scott'),
                                    (3, 'terry gilliam');
         INSERT INTO movies VALUES (10, 'fifth element', 1), (11, 'alien', 2),
                                   (12, 'valerian', 1), (13, 'brazil', 3),
                                   (14, 'prometheus', 2);",
    )
    .expect("seed database");

    // 2) A base word embedding — here a tiny word2vec-text-format corpus;
    //    in practice load pre-trained vectors the same way.
    let base = text_format::parse_text(
        "alien 0.9 0.1 0.0\n\
         prometheus 0.8 0.2 0.1\n\
         brazil 0.1 0.2 0.9\n\
         valerian 0.7 0.0 0.3\n\
         fifth_element 0.8 0.1 0.2\n\
         luc_besson 0.6 0.1 0.4\n\
         ridley_scott 0.7 0.3 0.0\n",
    )
    .expect("parse embedding");

    // 3) Retrofit: one call learns a vector for EVERY text value in the
    //    database — including 'terry gilliam', who has no word vector at
    //    all (out-of-vocabulary) and is positioned purely relationally.
    let output = Retro::new(RetroConfig::default()).retrofit(&db, &base).expect("retrofit");

    println!("learned {} embeddings of dim {}", output.embeddings.rows(), output.embeddings.cols());

    // 4) Query: nearest neighbours of a movie among all text values.
    let alien = output.catalog.lookup("movies", "title", "alien").expect("alien");
    println!("\nnearest neighbours of movies.title = 'alien':");
    for (id, score) in output.nearest(alien, 4) {
        let cat = &output.catalog.categories()[output.catalog.category_of(id) as usize];
        println!("  {score:+.3}  {}.{} = {:?}", cat.table, cat.column, output.catalog.text(id));
    }

    // 5) The OOV director got a meaningful vector from his movie.
    let gilliam = output.vector("persons", "name", "terry gilliam").expect("terry gilliam vector");
    let brazil = output.vector("movies", "title", "brazil").expect("brazil vector");
    println!(
        "\ncosine(terry gilliam, brazil) = {:+.3}  (OOV director placed via relations)",
        retro::linalg::vector::cosine(gilliam, brazil)
    );
}
