//! Incremental maintenance: keep embeddings current as the database grows,
//! without retraining from scratch — the in-database-ML requirement the
//! paper's introduction calls out.
//!
//! ```text
//! cargo run --release --example incremental_updates
//! ```

use retro::core::incremental::IncrementalRetro;
use retro::core::{Retro, RetroConfig};
use retro::datasets::{TmdbConfig, TmdbDataset};
use retro::store::{sql, Value};

fn main() {
    let data = TmdbDataset::generate(TmdbConfig { n_movies: 200, ..TmdbConfig::default() });
    let mut db = data.db.clone();

    // Cold run.
    let mut session = IncrementalRetro::new(RetroConfig::default());
    let t0 = std::time::Instant::now();
    session.full_run(&db, &data.base).expect("full run");
    let cold_secs = t0.elapsed().as_secs_f64();
    let n0 = session.current().expect("state").embeddings.rows();
    println!("cold run: {n0} embeddings in {cold_secs:.3}s");

    // The database changes: a new movie arrives with a new review.
    sql::run_script(
        &mut db,
        "INSERT INTO movies VALUES (100001, 'g0w1 g5w3 m100001', 'g0w2 g0w5 x0w1',
                                    'en', 50000000.0, 90000000.0, 7.5)",
    )
    .expect("insert movie");
    db.insert("movie_genre", vec![Value::Int(100001), Value::Int(1)]).expect("link genre");
    db.insert(
        "reviews",
        vec![Value::Int(900001), Value::from("g0w1 g0w7 x0w2 fresh r900001"), Value::Int(100001)],
    )
    .expect("insert review");

    // Warm refresh: seeded from the previous solution, few iterations.
    // An append-only change like this takes the delta-scoped path — only
    // the new rows' neighbourhood is re-solved (docs/INCREMENTAL.md).
    let t1 = std::time::Instant::now();
    session.refresh(&db, &data.base).expect("refresh");
    let warm_secs = t1.elapsed().as_secs_f64();
    let out = session.current().expect("state");
    println!(
        "warm refresh ({:?} path): {} embeddings in {warm_secs:.3}s ({}x of cold)",
        session.last_refresh().expect("refreshed"),
        out.embeddings.rows(),
        (warm_secs / cold_secs.max(1e-9) * 100.0).round() / 100.0
    );

    // The refreshed solution must match a cold recompute. A delta refresh
    // appends new values after every previous id while a cold rebuild
    // interleaves them in scan order, so compare by (table, column, text)
    // — never by raw id.
    let cold = Retro::new(RetroConfig::default()).retrofit(&db, &data.base).expect("cold");
    let mut drift = 0.0f32;
    for (id, cat, text) in out.catalog.iter() {
        let category = &out.catalog.categories()[cat as usize];
        let cold_id = cold
            .catalog
            .lookup(&category.table, &category.column, text)
            .expect("value in cold rebuild");
        for (a, b) in out.embeddings.row(id).iter().zip(cold.embeddings.row(cold_id)) {
            drift = drift.max((a - b).abs());
        }
    }
    println!("max deviation from cold recompute: {drift:.4}  (expected: < 0.05)");
    assert!(drift < 0.05, "refresh drifted past the documented bound");

    let new_movie =
        out.catalog.lookup("movies", "title", "g0w1 g5w3 m100001").expect("new movie in catalog");
    let (id, score) = out.nearest(new_movie, 1)[0];
    println!("new movie's closest value: {:?} ({score:+.3})", out.catalog.text(id));
}
