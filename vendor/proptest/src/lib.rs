//! Offline shim for the subset of `proptest` this workspace's property
//! tests use: the [`proptest!`] macro over named strategies, range and
//! tuple strategies, `prop::collection::vec`, [`prop_assert!`] /
//! [`prop_assume!`], and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberate for an offline shim:
//! failing inputs are **not shrunk** (the failure message carries the
//! case number so the deterministic per-test seed reproduces it), and
//! excessive `prop_assume!` rejection aborts the test as *passed* after
//! a bounded number of attempts rather than erroring.

#[doc(hidden)]
pub use rand as __rand;

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random values for one named test input.
    ///
    /// Real proptest builds a shrinkable `ValueTree`; the shim generates
    /// plain values.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_strategy_for_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// A fixed value (`Just`) is its own strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_strategy_for_tuples {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_strategy_for_tuples! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Acceptable vector-length specifiers for [`vec()`](vec()): an exact length,
    /// a half-open range, or an inclusive range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self { min: r.start, max: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { min: *r.start(), max: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S` and a length drawn
    /// from `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element_strategy, len)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (`cases` is the only knob the shim honours).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
        /// Attempt multiplier before giving up on `prop_assume!`-heavy
        /// tests (mirrors proptest's `max_global_rejects` spirit).
        pub max_reject_factor: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases, ..Self::default() }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 64, max_reject_factor: 20 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; try another case.
        Reject(String),
        /// `prop_assert!` failed; the whole test fails.
        Fail(String),
    }

    /// Stable per-test seed: FNV-1a of the fully qualified test name, so
    /// failures reproduce run-to-run without an env knob.
    pub fn seed_for(name: &str) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};

    /// Mirror of proptest's `prelude::prop` module path
    /// (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Run named strategies against a test body `cases` times.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     #[test]
///     fn my_property(x in 0usize..10, v in prop::collection::vec(-1.0f32..1.0, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @config($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @config($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@config($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(config.max_reject_factor).max(1);
            while passed < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {attempts} of `{}` failed: {msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
    )*};
}

/// Assert inside a `proptest!` body; failure fails the whole property.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Reject the current case (inputs don't satisfy a precondition); the
/// runner draws a fresh case without counting this one.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_of_tuples_has_requested_len(
            edges in prop::collection::vec((0usize..6, 0usize..5), 1..12),
            fixed in prop::collection::vec(0.0f32..1.0, 6),
        ) {
            prop_assert!(!edges.is_empty() && edges.len() < 12);
            prop_assert_eq!(fixed.len(), 6);
            for (a, b) in edges {
                prop_assert!(a < 6 && b < 5, "edge out of bounds: ({a}, {b})");
            }
        }

        #[test]
        fn assume_filters_cases(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        // Any attribute satisfies the macro's meta slot; a nested `#[test]`
        // would trigger the `unnameable_test_items` lint.
        proptest! {
            #[allow(dead_code)]
            fn inner(x in 10usize..20) {
                prop_assert!(x < 5, "x was {x}");
            }
        }
        inner();
    }
}
