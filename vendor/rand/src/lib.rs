//! Offline shim for the subset of the `rand` 0.8 API used in this
//! workspace: [`Rng`] (`gen`, `gen_bool`, `gen_range`), [`SeedableRng`]
//! (`seed_from_u64`), [`rngs::StdRng`], and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! The container this workspace builds in has no crates.io access, so the
//! real `rand` cannot be fetched; this crate keeps call sites source
//! compatible. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic for a given seed, which is what every test and dataset
//! generator in the workspace relies on.

/// Low-level source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (top half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, the full range for integers, fair coin for `bool`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty inclusive range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * <$t as Standard>::sample_standard(rng)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                start + (end - start) * <$t as Standard>::sample_standard(rng)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] (including unsized ones behind `&mut`).
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        f64::sample_standard(self) < p
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), state-initialized with SplitMix64 as its authors recommend.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers: in-place Fisher–Yates shuffle and uniform choice.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
    }

    #[test]
    fn unit_interval_samples_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn unsized_rng_references_work() {
        // Mirrors the `R: Rng + ?Sized` bound used across the workspace.
        fn take(rng: &mut (impl Rng + ?Sized)) -> f32 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = take(&mut rng);
        let dynrng: &mut StdRng = &mut rng;
        let _ = take(dynrng);
    }
}
