//! Offline shim for the sliver of `serde` this workspace uses: a
//! [`Serialize`] trait (plus `#[derive(Serialize)]`) that renders a value
//! into a self-describing [`ser::Content`] tree, which `serde_json`
//! (also shimmed) prints. The real serde's visitor architecture is
//! deliberately skipped — report structs here are small and only ever
//! serialized to JSON.

// Let the `::serde::...` paths emitted by the derive macro resolve when
// the deriving code lives inside this crate (e.g. the tests below).
extern crate self as serde;

pub mod ser {
    /// Self-describing serialized value tree.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Content {
        Null,
        Bool(bool),
        I64(i64),
        U64(u64),
        F64(f64),
        Str(String),
        Seq(Vec<Content>),
        /// Field order is preserved (maps come from struct derives).
        Map(Vec<(String, Content)>),
    }
}

/// Types renderable into a [`ser::Content`] tree.
pub trait Serialize {
    fn to_content(&self) -> ser::Content;
}

pub use serde_derive::Serialize;

use ser::Content;

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::ser::Content;
    use super::Serialize;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3usize.to_content(), Content::U64(3));
        assert_eq!((-2i64).to_content(), Content::I64(-2));
        assert_eq!(1.5f64.to_content(), Content::F64(1.5));
        assert_eq!("hi".to_content(), Content::Str("hi".into()));
        assert_eq!(true.to_content(), Content::Bool(true));
        assert_eq!(Option::<u32>::None.to_content(), Content::Null);
    }

    #[test]
    fn sequences_nest() {
        let v = vec![vec![1u32], vec![2, 3]];
        assert_eq!(
            v.to_content(),
            Content::Seq(vec![
                Content::Seq(vec![Content::U64(1)]),
                Content::Seq(vec![Content::U64(2), Content::U64(3)]),
            ])
        );
    }

    #[test]
    fn derive_emits_ordered_map() {
        #[derive(Serialize)]
        struct Point {
            x: f64,
            y: f64,
            tag: String,
        }
        let content = Point { x: 1.0, y: 2.0, tag: "p".into() }.to_content();
        assert_eq!(
            content,
            Content::Map(vec![
                ("x".into(), Content::F64(1.0)),
                ("y".into(), Content::F64(2.0)),
                ("tag".into(), Content::Str("p".into())),
            ])
        );
    }

    #[test]
    fn derive_handles_lifetimes_and_type_params() {
        #[derive(Serialize)]
        struct Doc<'a, T> {
            title: &'a str,
            rows: &'a [T],
        }
        let rows = vec![1u32, 2];
        let content = Doc { title: "t", rows: &rows }.to_content();
        assert_eq!(
            content,
            Content::Map(vec![
                ("title".into(), Content::Str("t".into())),
                ("rows".into(), Content::Seq(vec![Content::U64(1), Content::U64(2)])),
            ])
        );
    }
}
