//! Offline shim for the slice of the `criterion` API the workspace's
//! benches use: `Criterion::benchmark_group`, `sample_size`,
//! `bench_function` (with `&str` or [`BenchmarkId`] ids), `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: per benchmark, one warm-up call
//! then `sample_size` timed runs, reporting mean / min / max wall time.
//! When invoked by `cargo test` (which passes `--test` to `harness =
//! false` bench targets) each benchmark body runs **once** as a smoke
//! test, mirroring real criterion's test mode.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{}/{}", function_id.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Anything usable as a benchmark id (`&str`, `String`, [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Times closures handed to [`Bencher::iter`].
pub struct Bencher {
    samples: usize,
    /// In test mode each body runs once, untimed.
    test_mode: bool,
    durations: Vec<Duration>,
}

impl Bencher {
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        black_box(routine()); // warm-up
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }
}

/// A named set of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed runs each benchmark takes (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        let mut bencher = Bencher {
            samples: self.sample_size,
            test_mode: self.criterion.test_mode,
            durations: Vec::new(),
        };
        f(&mut bencher);
        if self.criterion.test_mode {
            println!("test {label} ... ok (ran once)");
        } else {
            report(&label, &bencher.durations);
        }
        self
    }

    pub fn finish(self) {}
}

fn report(label: &str, durations: &[Duration]) {
    if durations.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let total: Duration = durations.iter().sum();
    let mean = total / durations.len() as u32;
    let min = durations.iter().min().unwrap();
    let max = durations.iter().max().unwrap();
    println!(
        "{label:<50} mean {mean:>12?}   min {min:>12?}   max {max:>12?}   n {}",
        durations.len()
    );
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` invokes harness = false bench binaries with
        // `--test`; `cargo bench` passes `--bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }

    pub fn bench_function(
        &mut self,
        id: impl IntoBenchmarkId,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declare a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function(BenchmarkId::new("count", 1), |b| b.iter(|| calls += 1));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn test_mode_runs_each_body_once() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("shim");
        let mut calls = 0usize;
        group.bench_function("once", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("csr", 64).into_benchmark_id(), "csr/64");
        assert_eq!(BenchmarkId::from_parameter(7).into_benchmark_id(), "7");
    }
}
