//! Offline shim for the subset of the `bytes` crate used by
//! `retro_embed::text_format`: [`Bytes`] / [`BytesMut`] plus the
//! little-endian cursor methods of [`Buf`] / [`BufMut`].
//!
//! [`Bytes`] shares its backing buffer through an `Arc`, so `clone` and
//! [`Bytes::slice`] are O(1) views like the real crate (minus the
//! vtable machinery).

use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer with a read cursor.
#[derive(Clone, Debug)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::from(Vec::new())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// O(1) sub-view of this buffer (`range` is relative to `self`).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice out of bounds: {range:?} of {}",
            self.len()
        );
        Self {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Self::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Self { data: Arc::new(data), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

/// Growable byte buffer; freeze into [`Bytes`] when done writing.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        Self { data: Vec::with_capacity(capacity) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential big-buffer reads (little-endian helpers only — the cache
/// format is LE throughout).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn advance(&mut self, n: usize);
    fn chunk(&self) -> &[u8];

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice: buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    fn get_f32_le(&mut self) -> f32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        f32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }
}

/// Sequential buffer writes (little-endian helpers only).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn write_then_read_round_trip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"RETV");
        buf.put_u32_le(7);
        buf.put_f32_le(-1.5);
        let mut bytes = buf.freeze();
        assert_eq!(bytes.remaining(), 12);
        let mut magic = [0u8; 4];
        bytes.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"RETV");
        assert_eq!(bytes.get_u32_le(), 7);
        assert_eq!(bytes.get_f32_le(), -1.5);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_is_a_window() {
        let bytes = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = bytes.slice(2..5);
        assert_eq!(mid.as_ref(), &[2, 3, 4]);
        let inner = mid.slice(1..2);
        assert_eq!(inner.as_ref(), &[3]);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut bytes = Bytes::from(vec![1u8, 2]);
        let _ = bytes.get_u32_le();
    }
}
