//! Offline shim for the subset of `serde_json` used by the bench
//! harness: [`to_string`] / [`to_string_pretty`] over the shimmed
//! `serde::Serialize`, and a strict little recursive-descent parser into
//! an indexable [`Value`].

use serde::ser::Content;
use serde::Serialize;

/// JSON error (message + byte offset for parse errors).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    message: String,
    offset: usize,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}
impl std::error::Error for Error {}

impl Error {
    fn new(message: impl Into<String>, offset: usize) -> Self {
        Self { message: message.into(), offset }
    }
}

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered, like serde_json with `preserve_order`.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(self)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

/// Serialize compactly.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), None, 0, &mut out);
    Ok(out)
}

/// Serialize with two-space indentation.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_content(content: &Content, indent: Option<usize>, level: usize, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::F64(n) => write_number(*n, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_content(item, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                write_escaped(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(value, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * level));
    }
}

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            // Keep integral floats readable (serde_json prints 1.0 as 1.0,
            // but plain integers round-trip either way for our reports).
            out.push_str(&format!("{n:.1}"));
        } else {
            out.push_str(&n.to_string());
        }
    } else {
        // JSON has no NaN/Infinity; serde_json errors here, the shim
        // degrades to null (reports never contain non-finite stats).
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types deserializable from a JSON string (only [`Value`] in the shim).
pub trait FromJson: Sized {
    fn from_json_value(value: Value) -> Result<Self, Error>;
}

impl FromJson for Value {
    fn from_json_value(value: Value) -> Result<Self, Error> {
        Ok(value)
    }
}

/// Parse a JSON document.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters", parser.pos));
    }
    T::from_json_value(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected {:?}", byte as char), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!("unexpected {:?}", c as char), self.pos)),
            None => Err(Error::new("unexpected end of input", self.pos)),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("expected `{word}`"), self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::new(format!("bad number `{text}`"), start))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape", self.pos))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape", self.pos))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape", self.pos))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point", self.pos))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8", self.pos))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new("expected `,` or `}`", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Serialize)]
    struct Report {
        name: String,
        scores: Vec<f64>,
        count: usize,
    }

    #[test]
    fn pretty_round_trips_through_parser() {
        let report = Report { name: "rn \"quoted\"".into(), scores: vec![0.5, 1.0], count: 2 };
        let json = to_string_pretty(&report).unwrap();
        let value: Value = from_str(&json).unwrap();
        assert_eq!(value["name"], "rn \"quoted\"");
        assert_eq!(value["scores"][1], 1.0);
        assert_eq!(value["count"], 2.0);
    }

    #[test]
    fn compact_output_has_no_whitespace() {
        let json = to_string(&Report { name: "x".into(), scores: vec![], count: 0 }).unwrap();
        assert_eq!(json, r#"{"name":"x","scores":[],"count":0}"#);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nope").is_err());
        assert!(from_str::<Value>("{} extra").is_err());
    }

    #[test]
    fn missing_keys_index_to_null() {
        let value: Value = from_str(r#"{"a": [10, 20]}"#).unwrap();
        assert_eq!(value["a"][1], 20.0);
        assert_eq!(value["b"], Value::Null);
        assert_eq!(value["a"][5], Value::Null);
    }

    #[test]
    fn escapes_round_trip() {
        let value: Value = from_str(r#""tab\t nl\n uniA""#).unwrap();
        assert_eq!(value, "tab\t nl\n uniA");
    }
}
