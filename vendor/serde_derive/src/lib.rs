//! Offline shim for `#[derive(Serialize)]` — hand-parses the item token
//! stream (no `syn`/`quote` in the container) and emits an impl of the
//! shimmed `serde::Serialize` trait that renders the struct as an ordered
//! `Content::Map`.
//!
//! Supported shape: structs with named fields, with optional lifetime
//! parameters and optional unbounded type parameters (each type parameter
//! gets a `: ::serde::Serialize` bound in the emitted impl). Enums, tuple
//! structs, const generics, and bounded/`where`-claused generics are
//! rejected with a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(out) => out,
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// One parsed generic parameter: `'a` or `T`.
enum GenericParam {
    Lifetime(String),
    Type(String),
}

fn expand(input: TokenStream) -> Result<TokenStream, String> {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`) and visibility.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
            return Err("serde shim: #[derive(Serialize)] supports only structs".into())
        }
        other => return Err(format!("serde shim: expected `struct`, found {other:?}")),
    }

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde shim: expected struct name, found {other:?}")),
    };

    // Generics: collect the raw parameter list between < and >.
    let mut generics: Vec<GenericParam> = Vec::new();
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        tokens.next();
        let mut depth = 1usize;
        let mut current: Vec<TokenTree> = Vec::new();
        let mut params_raw: Vec<Vec<TokenTree>> = Vec::new();
        for tt in tokens.by_ref() {
            match &tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    params_raw.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
            current.push(tt);
        }
        if !current.is_empty() {
            params_raw.push(current);
        }
        for param in params_raw {
            if param.iter().any(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ':')) {
                return Err("serde shim: bounded generic parameters are not supported".into());
            }
            match &param[..] {
                [TokenTree::Punct(p), TokenTree::Ident(id)] if p.as_char() == '\'' => {
                    generics.push(GenericParam::Lifetime(format!("'{id}")));
                }
                [TokenTree::Ident(id)] if id.to_string() == "const" => {
                    return Err("serde shim: const generics are not supported".into())
                }
                [TokenTree::Ident(id)] => generics.push(GenericParam::Type(id.to_string())),
                _ => return Err("serde shim: unsupported generic parameter shape".into()),
            }
        }
    }

    // Field block.
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Ident(id)) if id.to_string() == "where" => {
                return Err("serde shim: `where` clauses are not supported".into())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                return Err("serde shim: unit structs are not supported".into())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err("serde shim: tuple structs are not supported".into())
            }
            Some(_) => continue,
            None => return Err("serde shim: struct has no field block".into()),
        }
    };

    let fields = parse_named_fields(body.stream())?;
    if fields.is_empty() {
        return Err("serde shim: struct has no named fields".into());
    }

    // Assemble the impl.
    let params: Vec<String> = generics
        .iter()
        .map(|g| match g {
            GenericParam::Lifetime(l) => l.clone(),
            GenericParam::Type(t) => t.clone(),
        })
        .collect();
    let generics_decl =
        if params.is_empty() { String::new() } else { format!("<{}>", params.join(", ")) };
    let bounds: Vec<String> = generics
        .iter()
        .filter_map(|g| match g {
            GenericParam::Type(t) => Some(format!("{t}: ::serde::Serialize")),
            GenericParam::Lifetime(_) => None,
        })
        .collect();
    let where_clause =
        if bounds.is_empty() { String::new() } else { format!(" where {}", bounds.join(", ")) };

    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), ::serde::Serialize::to_content(&self.{f}))"
            )
        })
        .collect();

    let out = format!(
        "impl{generics_decl} ::serde::Serialize for {name}{generics_decl}{where_clause} {{\n\
             fn to_content(&self) -> ::serde::ser::Content {{\n\
                 ::serde::ser::Content::Map(::std::vec![{}])\n\
             }}\n\
         }}",
        entries.join(", ")
    );
    out.parse().map_err(|e| format!("serde shim: generated impl failed to parse: {e:?}"))
}

/// Pull field names out of a named-field block, skipping attributes,
/// visibility, and the type after each `:` (tracking `<...>` depth so
/// commas inside generic types don't split fields).
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    'fields: while tokens.peek().is_some() {
        // Skip attributes and visibility before the name.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("serde shim: expected field name, found {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => {
                return Err(format!("serde shim: expected `:` after `{name}`, found {other:?}"))
            }
        }
        fields.push(name);
        // Skip the type until a top-level comma.
        let mut angle_depth = 0usize;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' && angle_depth > 0 => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => continue 'fields,
                _ => {}
            }
        }
        break; // last field, no trailing comma
    }
    Ok(fields)
}
