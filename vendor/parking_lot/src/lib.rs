//! Offline shim for the subset of `parking_lot` used in this workspace:
//! [`RwLock`] with the no-poisoning API (`read`/`write` return guards
//! directly). Backed by `std::sync::RwLock`; a poisoned inner lock is
//! recovered with `into_inner`, matching parking_lot's behaviour of not
//! propagating panics through the lock.

use std::sync::{self, TryLockError};

/// Reader-writer lock whose `read`/`write` never return poison errors.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared read guard; derefs to `T`.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard; derefs (mutably) to `T`.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard { inner }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard { inner }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(inner) => Some(RwLockReadGuard { inner }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockReadGuard { inner: e.into_inner() }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(inner) => Some(RwLockWriteGuard { inner }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockWriteGuard { inner: e.into_inner() }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::RwLock;
    use std::sync::Arc;

    #[test]
    fn read_write_round_trip() {
        let lock = RwLock::new(1);
        *lock.write() += 41;
        assert_eq!(*lock.read(), 42);
    }

    #[test]
    fn concurrent_readers() {
        let lock = Arc::new(RwLock::new(vec![1, 2, 3]));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = lock.clone();
                std::thread::spawn(move || l.read().len())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 3);
        }
    }

    #[test]
    fn try_write_blocks_under_reader() {
        let lock = RwLock::new(0);
        let _guard = lock.read();
        assert!(lock.try_write().is_none());
        assert!(lock.try_read().is_some());
    }
}
